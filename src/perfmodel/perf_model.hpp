// Calibrated per-kernel performance models (StarPU-style).
//
// The paper's StarPU port relies on auto-calibrated, history-based
// per-kernel performance models to drive dmda/HEFT placement (§IV); this
// subsystem is our equivalent for *real* execution on the current host:
//
//   calibrate -> persist -> load -> predict -> refine online
//
// Two layers, consulted in order by CalibratedCosts:
//   1. a *history* layer: per (task class, resource kind, flop bucket)
//      running-average rates observed from real task executions -- the
//      direct analogue of StarPU's per-codelet history models keyed by
//      data footprint;
//   2. a *fitted kernel* layer: piecewise rate curves per (kernel class,
//      resource kind) measured by the microbenchmark harness
//      (calibrate.hpp) over a grid of (m, n, k) shapes.
// Shapes not covered by either layer degrade to the flop-proportional
// oracle (flop_costs.hpp), so a stale or partial model can never make a
// prediction impossible -- only less accurate.
//
// Models persist as versioned JSON under models/ (schema documented with
// a worked example in docs/PERF_MODELS.md) and are validated by the
// `docs_check` ctest target.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "runtime/task.hpp"

namespace spx::perfmodel {

/// The kernel families the calibration harness measures.  CPU workers run
/// the TempBuffer update path (GemmNt + Scatter); GPU-stream workers run
/// the buffer-free Direct path (GemmNtGapped), matching the real driver.
enum class KernelClass : std::uint8_t {
  Potrf,         ///< diagonal-block Cholesky (LLT panels)
  Ldlt,          ///< diagonal-block LDL^T (LDLT panels)
  Getrf,         ///< diagonal-block LU, no pivoting (LU panels)
  TrsmPanel,     ///< off-diagonal panel TRSM (X := X * T^{-1} shapes)
  GemmNt,        ///< contiguous C -= A*B^T into a temp buffer (CPU path)
  GemmNtGapped,  ///< segmented GEMM straight into the gapped panel
  Scatter        ///< buffer scatter-subtract; a *bytes*-rate kernel
};
inline constexpr int kNumKernelClasses = 7;

/// Task classes of the history layer (one StarPU "codelet" each).  Panel
/// classes are split per factorization kind because their kernel mix
/// differs (POTRF vs LDL^T vs GETRF + 2 TRSM).
enum class TaskClass : std::uint8_t {
  PanelLlt,
  PanelLdlt,
  PanelLu,
  Update
};
inline constexpr int kNumTaskClasses = 4;

const char* to_string(KernelClass c);
const char* to_string(TaskClass c);
bool kernel_class_from_string(std::string_view s, KernelClass* out);
bool task_class_from_string(std::string_view s, TaskClass* out);

/// History class of a panel/update task under factorization `kind`.
TaskClass task_class_of(Factorization kind, TaskKind task);

/// Kernel shape; the semantics of (m, n, k) per class:
///   Potrf/Ldlt/Getrf: n x n diagonal block (m = n = k)
///   TrsmPanel:        m rows solved against an n x n triangle
///   GemmNt[Gapped]:   C(m x n) -= A(m x k) * B(n x k)^T
///   Scatter:          m x n buffer scattered into the target panel
struct KernelShape {
  double m = 0.0;
  double n = 0.0;
  double k = 0.0;
};

/// Work of a shape in the class's rate currency: *effective* flops for the
/// compute kernels -- raw flops inflated by a saturating small-dimension
/// penalty, so shapes with equal work take approximately equal time and a
/// 1-D table keyed by it can cover thin-block and cube shapes at once --
/// and bytes moved for Scatter.  Strictly increasing in each of m, n, k.
double kernel_work(KernelClass c, const KernelShape& s);

/// One calibrated grid point: measured sustained rate (work units/s) at a
/// concrete shape.
struct CalPoint {
  KernelShape shape;
  double work = 0.0;   ///< kernel_work of the shape
  double rate = 0.0;   ///< work units per second
  int samples = 0;     ///< timing repetitions behind the measurement
};

/// Piecewise rate curve for one (kernel class, resource kind): prediction
/// log-log-interpolates the rate between the two calibrated points
/// bracketing the queried work, clamping outside the grid.  fit() enforces
/// rate(w2)/rate(w1) <= w2/w1 between adjacent points, which makes the
/// predicted *time* non-decreasing in work within every fitted segment
/// (tested in test_perfmodel.cpp).
class KernelTable {
 public:
  /// Adds a calibration point (any order; fit() sorts).
  void add(const CalPoint& p);
  /// Sorts by work, merges duplicate work values, applies the
  /// monotonicity clamp.  Must be called before seconds().
  void fit();

  bool empty() const { return points_.empty(); }
  const std::vector<CalPoint>& points() const { return points_; }

  /// Predicted seconds for `work` units; work <= 0 returns 0.
  double seconds(double work) const;

 private:
  std::vector<CalPoint> points_;  ///< sorted by work after fit()
};

/// The persisted model: fitted kernel tables + online history.
///
/// Thread safety: the kernel tables are immutable after load/calibration;
/// the history layer is internally locked so the real driver can observe()
/// from worker threads while nothing else mutates the model.  Consumers
/// (CalibratedCosts) snapshot predictions at construction, so refinement
/// takes effect on the *next* factorization -- the same "models converge
/// across runs" behaviour as StarPU's on-disk history files.
class PerfModel {
 public:
  static constexpr int kSchemaVersion = 1;

  PerfModel() = default;
  PerfModel(const PerfModel& other);
  PerfModel& operator=(const PerfModel& other);

  /// Free-form host tag stored in the file ("hostname", "mirage", ...).
  const std::string& host() const { return host_; }
  void set_host(std::string host) { host_ = std::move(host); }

  /// Installs a fitted table (replacing any previous one for the slot).
  void set_table(KernelClass c, ResourceKind kind, KernelTable table);
  /// The fitted table for a slot, or nullptr when never calibrated.
  const KernelTable* table(KernelClass c, ResourceKind kind) const;

  /// Predicted seconds for one kernel invocation; false when the slot has
  /// no fitted table (caller falls back to its flop model).
  bool kernel_seconds(KernelClass c, ResourceKind kind,
                      const KernelShape& shape, double* out) const;

  // ---- history layer (online refinement) ------------------------------
  /// Feeds one measured task duration into the history layer.  Buckets by
  /// floor(log2(flops)); keeps a saturating running mean of the rate.
  /// Thread-safe.
  void observe(TaskClass c, ResourceKind kind, double flops,
               double seconds);
  /// Predicted seconds from the history layer; false when the bucket has
  /// fewer than `min_samples` observations.  Thread-safe.
  bool history_seconds(TaskClass c, ResourceKind kind, double flops,
                       double* out, double min_samples = 3.0) const;
  /// Total populated history buckets (all classes and kinds).
  std::size_t num_history_buckets() const;

  // ---- persistence ----------------------------------------------------
  /// Serializes to the versioned JSON schema of docs/PERF_MODELS.md.
  std::string to_json() const;
  /// Writes to_json() to `path`; throws InvalidArgument on I/O failure.
  void save(const std::string& path) const;
  /// Parses a JSON document; throws InvalidArgument on schema violations
  /// (wrong version, missing fields, non-positive rates).
  static PerfModel from_json(std::string_view text);
  /// Loads from a file; returns nullopt (and fills `error`) on a missing
  /// or corrupt file instead of throwing -- callers degrade to FlopCosts.
  static std::optional<PerfModel> load(const std::string& path,
                                       std::string* error = nullptr);

 private:
  struct HistoryKey {
    std::uint8_t task_class;
    std::uint8_t kind;
    int bucket;
    auto operator<=>(const HistoryKey&) const = default;
  };
  struct HistoryEntry {
    double rate = 0.0;    ///< running mean, work units/s
    double weight = 0.0;  ///< saturating observation count
  };
  static int resource_slot(ResourceKind kind);

  std::string host_ = "uncalibrated";
  /// [kernel class][resource slot]; empty table = never calibrated.
  KernelTable tables_[kNumKernelClasses][2];
  mutable std::mutex history_mutex_;
  std::map<HistoryKey, HistoryEntry> history_;
};

}  // namespace spx::perfmodel
