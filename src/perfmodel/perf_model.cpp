#include "perfmodel/perf_model.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>

#include "common/flops.hpp"
#include "common/json.hpp"

namespace spx::perfmodel {

const char* to_string(KernelClass c) {
  switch (c) {
    case KernelClass::Potrf: return "potrf";
    case KernelClass::Ldlt: return "ldlt";
    case KernelClass::Getrf: return "getrf";
    case KernelClass::TrsmPanel: return "trsm_panel";
    case KernelClass::GemmNt: return "gemm_nt";
    case KernelClass::GemmNtGapped: return "gemm_nt_gapped";
    case KernelClass::Scatter: return "scatter";
  }
  return "?";
}

const char* to_string(TaskClass c) {
  switch (c) {
    case TaskClass::PanelLlt: return "panel_llt";
    case TaskClass::PanelLdlt: return "panel_ldlt";
    case TaskClass::PanelLu: return "panel_lu";
    case TaskClass::Update: return "update";
  }
  return "?";
}

bool kernel_class_from_string(std::string_view s, KernelClass* out) {
  for (int i = 0; i < kNumKernelClasses; ++i) {
    const auto c = static_cast<KernelClass>(i);
    if (s == to_string(c)) {
      *out = c;
      return true;
    }
  }
  return false;
}

bool task_class_from_string(std::string_view s, TaskClass* out) {
  for (int i = 0; i < kNumTaskClasses; ++i) {
    const auto c = static_cast<TaskClass>(i);
    if (s == to_string(c)) {
      *out = c;
      return true;
    }
  }
  return false;
}

TaskClass task_class_of(Factorization kind, TaskKind task) {
  if (task == TaskKind::Update) return TaskClass::Update;
  switch (kind) {
    case Factorization::LLT: return TaskClass::PanelLlt;
    case Factorization::LDLT: return TaskClass::PanelLdlt;
    case Factorization::LU: return TaskClass::PanelLu;
  }
  return TaskClass::PanelLlt;
}

// Small-dimension penalty of the effective-work key (see kernel_work):
// each dimension d contributes a factor (d + h) / d to the work per flop,
// the same saturating efficiency form as the simulator's CPU roofline.
// 24 is in the range the host calibration of sim/calibration.cpp finds
// for cpu_half_dim on common x86 parts.
constexpr double kEffHalfDim = 12.0;

double eff_penalty(double d) { return (d + kEffHalfDim) / std::max(1.0, d); }

double kernel_work(KernelClass c, const KernelShape& s) {
  // The compute classes are keyed by *effective* work: flops inflated by
  // a small-dimension penalty per participating dimension.  Two shapes
  // with equal effective work then take approximately equal time, which is
  // what a 1-D table needs -- a thin-block GEMM (n = 4) and a cube GEMM of
  // equal raw flops differ by an order of magnitude in rate, and sparse
  // update tasks are full of thin blocks.  Effective work is strictly
  // increasing in every dimension (for GemmNt it collapses to
  // 2(m+h)(n+h)(k+h)), so time monotonicity in m, n, k survives the
  // KernelTable clamp.  Scatter stays in plain bytes: it is
  // bandwidth-bound at any shape.
  switch (c) {
    case KernelClass::Potrf:
      return flops_potrf(s.n) * eff_penalty(s.n) * eff_penalty(s.n) *
             eff_penalty(s.n);
    case KernelClass::Ldlt:
      return flops_ldlt(s.n) * eff_penalty(s.n) * eff_penalty(s.n) *
             eff_penalty(s.n);
    case KernelClass::Getrf:
      return flops_getrf(s.n) * eff_penalty(s.n) * eff_penalty(s.n) *
             eff_penalty(s.n);
    case KernelClass::TrsmPanel:
      return flops_trsm(s.n, s.m) * eff_penalty(s.m) * eff_penalty(s.n) *
             eff_penalty(s.n);
    case KernelClass::GemmNt:
    case KernelClass::GemmNtGapped:
      return flops_gemm(s.m, s.n, s.k) * eff_penalty(s.m) *
             eff_penalty(s.n) * eff_penalty(s.k);
    case KernelClass::Scatter:
      // Read the buffer, read and write the destination column: three
      // 8-byte accesses per scattered entry.
      return 24.0 * s.m * s.n;
  }
  return 0.0;
}

// ---------------------------------------------------------------------------
// KernelTable

void KernelTable::add(const CalPoint& p) {
  SPX_CHECK_ARG(p.work > 0.0 && p.rate > 0.0,
                "perfmodel: calibration point needs positive work and rate");
  points_.push_back(p);
}

void KernelTable::fit() {
  std::sort(points_.begin(), points_.end(),
            [](const CalPoint& a, const CalPoint& b) {
              return a.work < b.work;
            });
  // Merge duplicate work values (keep the higher-confidence rate).
  std::vector<CalPoint> merged;
  for (const CalPoint& p : points_) {
    if (!merged.empty() && merged.back().work == p.work) {
      if (p.samples > merged.back().samples) merged.back() = p;
      continue;
    }
    merged.push_back(p);
  }
  points_ = std::move(merged);
  // Monotonicity clamp: between adjacent points the rate may not grow
  // faster than the work, so predicted time never *decreases* as a task
  // gets bigger inside a segment (see header).
  for (std::size_t i = 1; i < points_.size(); ++i) {
    const double cap =
        points_[i - 1].rate * (points_[i].work / points_[i - 1].work);
    points_[i].rate = std::min(points_[i].rate, cap);
  }
}

double KernelTable::seconds(double work) const {
  SPX_DEBUG_ASSERT(!points_.empty());
  if (work <= 0.0) return 0.0;
  if (work <= points_.front().work) return work / points_.front().rate;
  if (work >= points_.back().work) return work / points_.back().rate;
  // Bracketing segment by work, then log-log interpolation of the rate.
  std::size_t hi = 1;
  while (points_[hi].work < work) ++hi;
  const CalPoint& a = points_[hi - 1];
  const CalPoint& b = points_[hi];
  const double t = (std::log(work) - std::log(a.work)) /
                   (std::log(b.work) - std::log(a.work));
  const double rate =
      std::exp((1.0 - t) * std::log(a.rate) + t * std::log(b.rate));
  return work / rate;
}

// ---------------------------------------------------------------------------
// PerfModel

PerfModel::PerfModel(const PerfModel& other) { *this = other; }

PerfModel& PerfModel::operator=(const PerfModel& other) {
  if (this == &other) return *this;
  std::scoped_lock lock(history_mutex_, other.history_mutex_);
  host_ = other.host_;
  for (int c = 0; c < kNumKernelClasses; ++c) {
    for (int k = 0; k < 2; ++k) tables_[c][k] = other.tables_[c][k];
  }
  history_ = other.history_;
  return *this;
}

int PerfModel::resource_slot(ResourceKind kind) {
  return kind == ResourceKind::Cpu ? 0 : 1;
}

void PerfModel::set_table(KernelClass c, ResourceKind kind,
                          KernelTable table) {
  tables_[static_cast<int>(c)][resource_slot(kind)] = std::move(table);
}

const KernelTable* PerfModel::table(KernelClass c, ResourceKind kind) const {
  const KernelTable& t = tables_[static_cast<int>(c)][resource_slot(kind)];
  return t.empty() ? nullptr : &t;
}

bool PerfModel::kernel_seconds(KernelClass c, ResourceKind kind,
                               const KernelShape& shape, double* out) const {
  const KernelTable* t = table(c, kind);
  if (t == nullptr) return false;
  *out = t->seconds(kernel_work(c, shape));
  return true;
}

void PerfModel::observe(TaskClass c, ResourceKind kind, double flops,
                        double seconds) {
  if (flops <= 0.0 || seconds <= 0.0) return;
  const HistoryKey key{static_cast<std::uint8_t>(c),
                       static_cast<std::uint8_t>(resource_slot(kind)),
                       std::ilogb(flops)};
  const double rate = flops / seconds;
  std::lock_guard<std::mutex> lock(history_mutex_);
  HistoryEntry& e = history_[key];
  // Saturating running mean: fully averaged history below the cap, then a
  // slow exponential forgetting so the model tracks machine drift.
  e.weight = std::min(e.weight + 1.0, 64.0);
  e.rate += (rate - e.rate) / e.weight;
}

bool PerfModel::history_seconds(TaskClass c, ResourceKind kind, double flops,
                                double* out, double min_samples) const {
  if (flops <= 0.0) return false;
  const HistoryKey key{static_cast<std::uint8_t>(c),
                       static_cast<std::uint8_t>(resource_slot(kind)),
                       std::ilogb(flops)};
  std::lock_guard<std::mutex> lock(history_mutex_);
  const auto it = history_.find(key);
  if (it == history_.end() || it->second.weight < min_samples) return false;
  *out = flops / it->second.rate;
  return true;
}

std::size_t PerfModel::num_history_buckets() const {
  std::lock_guard<std::mutex> lock(history_mutex_);
  return history_.size();
}

namespace {

const char* kind_name(int slot) { return slot == 0 ? "cpu" : "gpu_stream"; }

bool kind_from_name(std::string_view s, ResourceKind* out) {
  if (s == "cpu") {
    *out = ResourceKind::Cpu;
    return true;
  }
  if (s == "gpu_stream") {
    *out = ResourceKind::GpuStream;
    return true;
  }
  return false;
}

}  // namespace

std::string PerfModel::to_json() const {
  json::Value root = json::Value::object();
  root.set("spx_perf_model_version",
           json::Value(static_cast<double>(kSchemaVersion)));
  root.set("host", json::Value(host_));
  json::Value kernels = json::Value::array();
  for (int c = 0; c < kNumKernelClasses; ++c) {
    for (int slot = 0; slot < 2; ++slot) {
      const KernelTable& t = tables_[c][slot];
      if (t.empty()) continue;
      json::Value entry = json::Value::object();
      entry.set("kernel",
                json::Value(std::string(
                    to_string(static_cast<KernelClass>(c)))));
      entry.set("resource", json::Value(std::string(kind_name(slot))));
      json::Value points = json::Value::array();
      for (const CalPoint& p : t.points()) {
        json::Value jp = json::Value::object();
        jp.set("m", json::Value(p.shape.m));
        jp.set("n", json::Value(p.shape.n));
        jp.set("k", json::Value(p.shape.k));
        jp.set("work", json::Value(p.work));
        jp.set("rate", json::Value(p.rate));
        jp.set("samples", json::Value(static_cast<double>(p.samples)));
        points.push_back(std::move(jp));
      }
      entry.set("points", std::move(points));
      kernels.push_back(std::move(entry));
    }
  }
  root.set("kernels", std::move(kernels));
  json::Value history = json::Value::array();
  {
    std::lock_guard<std::mutex> lock(history_mutex_);
    for (const auto& [key, e] : history_) {
      json::Value jh = json::Value::object();
      jh.set("task",
             json::Value(std::string(
                 to_string(static_cast<TaskClass>(key.task_class)))));
      jh.set("resource", json::Value(std::string(kind_name(key.kind))));
      jh.set("bucket", json::Value(static_cast<double>(key.bucket)));
      jh.set("rate", json::Value(e.rate));
      jh.set("weight", json::Value(e.weight));
      history.push_back(std::move(jh));
    }
  }
  root.set("history", std::move(history));
  return root.dump();
}

void PerfModel::save(const std::string& path) const {
  std::ofstream out(path);
  SPX_CHECK_ARG(out.good(), "perfmodel: cannot open for writing: " + path);
  out << to_json();
  out.close();
  SPX_CHECK_ARG(out.good(), "perfmodel: write failed: " + path);
}

PerfModel PerfModel::from_json(std::string_view text) {
  const json::Value root = json::Value::parse(text);
  SPX_CHECK_ARG(root.is_object(), "perfmodel: document is not an object");
  const double version = root.at("spx_perf_model_version").as_number();
  SPX_CHECK_ARG(version == kSchemaVersion,
                "perfmodel: unsupported schema version " +
                    std::to_string(version));
  PerfModel model;
  model.host_ = root.string_or("host", "unknown");
  const json::Value& kernels = root.at("kernels");
  for (std::size_t i = 0; i < kernels.size(); ++i) {
    const json::Value& entry = kernels.at(i);
    KernelClass c;
    ResourceKind kind;
    SPX_CHECK_ARG(
        kernel_class_from_string(entry.at("kernel").as_string(), &c),
        "perfmodel: unknown kernel class '" +
            entry.at("kernel").as_string() + "'");
    SPX_CHECK_ARG(kind_from_name(entry.at("resource").as_string(), &kind),
                  "perfmodel: unknown resource kind '" +
                      entry.at("resource").as_string() + "'");
    KernelTable table;
    const json::Value& points = entry.at("points");
    SPX_CHECK_ARG(points.size() > 0, "perfmodel: kernel entry with no points");
    for (std::size_t j = 0; j < points.size(); ++j) {
      const json::Value& jp = points.at(j);
      CalPoint p;
      p.shape = {jp.number_or("m", 0.0), jp.number_or("n", 0.0),
                 jp.number_or("k", 0.0)};
      p.work = jp.at("work").as_number();
      p.rate = jp.at("rate").as_number();
      p.samples = static_cast<int>(jp.number_or("samples", 1.0));
      table.add(p);  // rejects non-positive work/rate
    }
    table.fit();
    model.set_table(c, kind, std::move(table));
  }
  if (const json::Value* history = root.find("history")) {
    for (std::size_t i = 0; i < history->size(); ++i) {
      const json::Value& jh = history->at(i);
      TaskClass c;
      ResourceKind kind;
      SPX_CHECK_ARG(task_class_from_string(jh.at("task").as_string(), &c),
                    "perfmodel: unknown task class '" +
                        jh.at("task").as_string() + "'");
      SPX_CHECK_ARG(kind_from_name(jh.at("resource").as_string(), &kind),
                    "perfmodel: unknown resource kind in history");
      const double rate = jh.at("rate").as_number();
      const double weight = jh.at("weight").as_number();
      SPX_CHECK_ARG(rate > 0.0 && weight > 0.0,
                    "perfmodel: history entry needs positive rate/weight");
      const HistoryKey key{
          static_cast<std::uint8_t>(c),
          static_cast<std::uint8_t>(resource_slot(kind)),
          static_cast<int>(jh.at("bucket").as_number())};
      model.history_[key] = HistoryEntry{rate, weight};
    }
  }
  return model;
}

std::optional<PerfModel> PerfModel::load(const std::string& path,
                                         std::string* error) {
  std::ifstream in(path);
  if (!in.good()) {
    if (error != nullptr) *error = "cannot open " + path;
    return std::nullopt;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  try {
    return from_json(buf.str());
  } catch (const std::exception& e) {
    if (error != nullptr) *error = e.what();
    return std::nullopt;
  }
}

}  // namespace spx::perfmodel
