// Calibration harness: microbenchmarks the real factorization kernels
// across a grid of (m, n, k) shapes and fits the piecewise rate tables of
// a PerfModel (the "calibrate" step of calibrate -> persist -> load ->
// refine; see perf_model.hpp and docs/PERF_MODELS.md).
//
// What is measured, per resource kind:
//   Cpu:       potrf / ldlt / getrf diagonal factors, the panel TRSM, the
//              TempBuffer update pair (contiguous gemm_nt + scatter);
//   GpuStream: the buffer-free Direct path (gemm_nt_gapped) -- the kernel
//              an emulated GPU-stream worker actually runs in the real
//              driver.  On a host with no device this measures the same
//              silicon as the CPU tables; retargeting at a real
//              accelerator replaces exactly this slot.
//
// Calibration is single-threaded by design, like StarPU's: per-worker
// rates are what dmda compares, and the history layer later absorbs any
// parallel-execution interference.
#pragma once

#include <string>

#include "perfmodel/perf_model.hpp"

namespace spx::perfmodel {

struct CalibrationOptions {
  /// Median-of repetitions per grid point (higher = steadier rates).
  int repeat = 5;
  /// Each measurement accumulates kernel invocations until at least this
  /// much kernel time, so tiny shapes are not at the timer's mercy.
  double min_seconds = 4e-3;
  /// Drastically reduced grid and repeat count for tests/CI smoke runs.
  bool quick = false;
  /// Host tag stored in the model file.
  std::string host = "host";
};

/// Runs the microbenchmark grid and returns a fitted model.  Takes a few
/// seconds at default settings (see bench_calibration).
PerfModel calibrate_kernels(const CalibrationOptions& options = {});

/// Measures a single kernel invocation at `shape` with the same harness
/// the grid uses (cold-rotation, median-of-repeats).  Used for holdout
/// validation: measure off-grid shapes, compare against model
/// predictions.  Shape semantics per class as in KernelShape.
CalPoint measure_point(KernelClass c, const KernelShape& shape,
                       const CalibrationOptions& options = {});

}  // namespace spx::perfmodel
