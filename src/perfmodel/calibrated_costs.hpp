// CalibratedCosts: a TaskCosts oracle backed by a calibrated PerfModel.
//
// Every consumer of TaskCosts -- the StarPU scheduler's dmda/HEFT
// expected-completion-time ranking, the native scheduler's static
// cost-model mapping, PaRSEC's steal ordering, subtree merging, and
// bottom-level priorities -- sees measured rates of THIS host instead of
// the hardcoded 5 GFlop/s / 8x oracle of FlopCosts.
//
// Prediction order per task (snapshotted at construction, so scheduler
// queries are plain array reads with zero locking):
//   1. history layer (measured durations of same-class, same-size tasks);
//   2. fitted kernel tables, via the block-wise decomposition below;
//   3. the flop-proportional fallback (uncovered shapes / stale models).
#pragma once

#include "perfmodel/perf_model.hpp"
#include "runtime/flop_costs.hpp"

namespace spx::perfmodel {

/// Kernel-table prediction for one panel task (factor + TRSM kernels).
/// False when the model lacks a table for any constituent kernel.
bool panel_task_seconds(const PerfModel& model, const SymbolicStructure& st,
                        Factorization kind, index_t p, ResourceKind res,
                        double* out);

/// Kernel-table prediction for one update task, decomposed block-by-block
/// exactly like the executing codelet: per-block GemmNt + one Scatter on
/// CPUs (the TempBuffer path), per-block GemmNtGapped on GPU streams (the
/// Direct path).  False when the model lacks a required table.
bool update_task_seconds(const PerfModel& model, const SymbolicStructure& st,
                         Factorization kind, index_t p, index_t e,
                         ResourceKind res, double* out);

class CalibratedCosts : public TaskCosts {
 public:
  struct Options {
    /// Fallback oracle parameters for uncovered shapes (FlopCosts).
    double fallback_cpu_gflops = 5.0;
    double fallback_gpu_speedup = 8.0;
    double pcie_gbps = 6.0;
    /// History predictions need at least this many observations.
    double history_min_samples = 3.0;
  };

  /// Snapshots predictions for every task of `table` from `model`.  Both
  /// must outlive this object (the model is re-consulted only by copy
  /// construction of another CalibratedCosts).
  CalibratedCosts(const TaskTable& table, const PerfModel& model,
                  Options options);
  CalibratedCosts(const TaskTable& table, const PerfModel& model)
      : CalibratedCosts(table, model, Options{}) {}

  /// Panel tasks are CPU-only (paper §V-B); GpuStream queries throw
  /// InvalidArgument, matching the FlopCosts contract.
  double panel_seconds(index_t p, ResourceKind kind) const override;
  double update_seconds(index_t p, index_t edge,
                        ResourceKind kind) const override;
  double transfer_seconds(double bytes) const override;

  /// Fraction of task predictions answered by the calibrated layers
  /// (history or kernel tables) rather than the flop fallback, in [0, 1].
  /// Low coverage means the model is stale for this problem's shapes.
  double coverage() const { return coverage_; }
  const PerfModel& model() const { return *model_; }

 private:
  const TaskTable* table_;
  const PerfModel* model_;
  Options options_;
  std::vector<double> panel_cpu_;
  std::vector<double> update_cpu_;
  std::vector<double> update_gpu_;
  std::vector<index_t> update_base_;
  double pcie_rate_;
  double coverage_ = 0.0;
};

/// Online-refinement adapter: feeds every measured task duration from the
/// real driver back into a PerfModel's history layer.  Thread-safe
/// (PerfModel::observe locks internally).  Plug into
/// RealDriverOptions::observer; refinement affects the *next*
/// factorization, because CalibratedCosts snapshots at construction.
class ModelRefiner : public TaskDurationObserver {
 public:
  /// Both arguments must outlive this object.
  ModelRefiner(PerfModel& model, const TaskTable& table)
      : model_(&model), table_(&table) {}

  void observe_task(const Task& t, ResourceKind kind,
                    double seconds) override {
    if (t.kind == TaskKind::Subtree || seconds <= 0.0) return;
    model_->observe(task_class_of(table_->factorization(), t.kind), kind,
                    table_->flops(t), seconds);
  }

 private:
  PerfModel* model_;
  const TaskTable* table_;
};

}  // namespace spx::perfmodel
