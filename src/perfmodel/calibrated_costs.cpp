#include "perfmodel/calibrated_costs.hpp"

namespace spx::perfmodel {
namespace {

KernelClass factor_kernel_of(Factorization kind) {
  switch (kind) {
    case Factorization::LLT: return KernelClass::Potrf;
    case Factorization::LDLT: return KernelClass::Ldlt;
    case Factorization::LU: return KernelClass::Getrf;
  }
  return KernelClass::Potrf;
}

}  // namespace

bool panel_task_seconds(const PerfModel& model, const SymbolicStructure& st,
                        Factorization kind, index_t p, ResourceKind res,
                        double* out) {
  const Panel& panel = st.panels[p];
  const double w = panel.width();
  const double below = panel.nrows_below();
  double factor_s = 0.0;
  if (!model.kernel_seconds(factor_kernel_of(kind), res, {w, w, w},
                            &factor_s)) {
    return false;
  }
  double trsm_s = 0.0;
  if (below > 0.0) {
    if (!model.kernel_seconds(KernelClass::TrsmPanel, res, {below, w, w},
                              &trsm_s)) {
      return false;
    }
    if (kind == Factorization::LU) trsm_s *= 2.0;  // L and U sides
  }
  *out = factor_s + trsm_s;
  return true;
}

bool update_task_seconds(const PerfModel& model, const SymbolicStructure& st,
                         Factorization kind, index_t p, index_t e,
                         ResourceKind res, double* out) {
  const Panel& sp = st.panels[p];
  const UpdateEdge& edge = st.targets[p][e];
  const double w = sp.width();
  const KernelClass gemm = res == ResourceKind::Cpu
                               ? KernelClass::GemmNt
                               : KernelClass::GemmNtGapped;
  // One GEMM (+ scatter on the TempBuffer CPU path) per (block, side),
  // with the executing codelet's exact row counts (codelets.cpp): the
  // symmetric kinds update the trailing trapezoid per block; LU updates
  // m rows from the first facing block on the L side plus -- only when
  // rows remain past the facing blocks -- the strictly-below mirror on
  // the U side.
  double total = 0.0;
  auto add_block = [&](double m, double nb) {
    if (m <= 0.0 || nb <= 0.0) return true;
    double gemm_s = 0.0;
    if (!model.kernel_seconds(gemm, res, {m, nb, w}, &gemm_s)) return false;
    total += gemm_s;
    if (res == ResourceKind::Cpu) {
      double scatter_s = 0.0;
      if (!model.kernel_seconds(KernelClass::Scatter, res, {m, nb, 0.0},
                                &scatter_s)) {
        return false;
      }
      total += scatter_s;
    }
    return true;
  };
  const index_t first_off = sp.blocks[edge.first_block].offset;
  const index_t last_off =
      edge.last_block < static_cast<index_t>(sp.blocks.size())
          ? sp.blocks[edge.last_block].offset
          : sp.nrows;
  for (index_t b = edge.first_block; b < edge.last_block; ++b) {
    const Block& blk = sp.blocks[b];
    const double nb = blk.height();
    if (kind == Factorization::LU) {
      if (!add_block(sp.nrows - first_off, nb)) return false;  // L side
      if (!add_block(sp.nrows - last_off, nb)) return false;   // U side
    } else {
      if (!add_block(sp.nrows - blk.offset, nb)) return false;
    }
  }
  *out = total;
  return true;
}

CalibratedCosts::CalibratedCosts(const TaskTable& table,
                                 const PerfModel& model, Options options)
    : table_(&table),
      model_(&model),
      options_(options),
      pcie_rate_(options.pcie_gbps * 1e9) {
  const SymbolicStructure& st = table.structure();
  const Factorization kind = table.factorization();
  const index_t np = st.num_panels();
  // Snapshot every prediction now: scheduler queries (dmda placement runs
  // under a lock on the hot path) must stay as cheap as FlopCosts.
  FlopCosts fallback(table, options.fallback_cpu_gflops,
                     options.fallback_gpu_speedup, options.pcie_gbps);
  panel_cpu_.resize(static_cast<std::size_t>(np));
  update_base_.resize(static_cast<std::size_t>(np) + 1, 0);
  index_t covered = 0;
  for (index_t p = 0; p < np; ++p) {
    const double flops = st.panel_task_flops(p, kind);
    double s;
    if (model.history_seconds(task_class_of(kind, TaskKind::Panel),
                              ResourceKind::Cpu, flops, &s,
                              options.history_min_samples) ||
        panel_task_seconds(model, st, kind, p, ResourceKind::Cpu, &s)) {
      ++covered;
    } else {
      s = fallback.panel_seconds(p, ResourceKind::Cpu);
    }
    panel_cpu_[p] = s;
    update_base_[p + 1] =
        update_base_[p] + static_cast<index_t>(st.targets[p].size());
  }
  update_cpu_.resize(static_cast<std::size_t>(update_base_[np]));
  update_gpu_.resize(static_cast<std::size_t>(update_base_[np]));
  for (index_t p = 0; p < np; ++p) {
    for (index_t e = 0; e < static_cast<index_t>(st.targets[p].size());
         ++e) {
      const double flops =
          st.update_task_flops(p, st.targets[p][e], kind);
      for (const ResourceKind res :
           {ResourceKind::Cpu, ResourceKind::GpuStream}) {
        double s;
        if (model.history_seconds(TaskClass::Update, res, flops, &s,
                                  options.history_min_samples) ||
            update_task_seconds(model, st, kind, p, e, res, &s)) {
          ++covered;
        } else {
          s = fallback.update_seconds(p, e, res);
        }
        (res == ResourceKind::Cpu ? update_cpu_
                                  : update_gpu_)[update_base_[p] + e] = s;
      }
    }
  }
  const index_t queries = np + 2 * update_base_[np];
  coverage_ = queries > 0 ? static_cast<double>(covered) / queries : 0.0;
}

double CalibratedCosts::panel_seconds(index_t p, ResourceKind kind) const {
  SPX_CHECK_ARG(kind == ResourceKind::Cpu,
                "panel tasks are CPU-only (paper §V-B): no GPU panel rate");
  return panel_cpu_[p];
}

double CalibratedCosts::update_seconds(index_t p, index_t edge,
                                       ResourceKind kind) const {
  return (kind == ResourceKind::Cpu ? update_cpu_
                                    : update_gpu_)[update_base_[p] + edge];
}

double CalibratedCosts::transfer_seconds(double bytes) const {
  return bytes / pcie_rate_;
}

}  // namespace spx::perfmodel
