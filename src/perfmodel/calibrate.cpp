#include "perfmodel/calibrate.hpp"

#include <algorithm>
#include <array>
#include <vector>

#include "common/rng.hpp"
#include "common/timer.hpp"
#include "kernels/dense.hpp"
#include "kernels/scatter.hpp"

namespace spx::perfmodel {
namespace {

void fill_random(std::vector<real_t>& v, Rng& rng) {
  for (auto& x : v) x = rng.uniform(-1.0, 1.0);
}

/// Current duration of a fixed warm reference GEMM.  Shared hosts and
/// containers drift 1.5-2x on second-scale windows (frequency scaling,
/// cgroup throttling, noisy neighbours); a grid point measured inside a
/// slow window would bake that window into its rate -- and, through the
/// monotone fit, into every neighbouring prediction.  Timing this probe
/// next to each measurement lets the harness divide the common mode out.
double reference_seconds() {
  constexpr index_t kN = 48;
  static const std::vector<real_t> a = [] {
    Rng rng(23);
    std::vector<real_t> v(static_cast<std::size_t>(kN) * kN);
    fill_random(v, rng);
    return v;
  }();
  static const std::vector<real_t> b = [] {
    Rng rng(29);
    std::vector<real_t> v(static_cast<std::size_t>(kN) * kN);
    fill_random(v, rng);
    return v;
  }();
  static std::vector<real_t> c(static_cast<std::size_t>(kN) * kN, 0.0);
  double best = 0.0;
  for (int probe = 0; probe < 3; ++probe) {
    Timer t;
    kernels::gemm_nt<real_t>(kN, kN, kN, -1.0, a.data(), kN, b.data(), kN,
                             1.0, c.data(), kN);
    const double s = t.elapsed();
    if (probe == 0 || s < best) best = s;
  }
  return best;
}

/// Median-of-`repeat` sustained rate of `kernel` (work units/s).  Each
/// repetition accumulates invocations until `min_seconds` of kernel time;
/// `setup` re-initializes inputs outside the timed region.  The median
/// (not the best) across repetitions resists interference spikes without
/// the optimistic bias a best-of would bake into every prediction.  Every
/// repetition is drift-corrected against the reference probe, normalized
/// to the first probe this process took, so all rates -- grid and holdout
/// alike -- describe the same (baseline) machine speed.
template <typename Setup, typename Kernel>
double measure_rate(double work, const CalibrationOptions& o, Setup&& setup,
                    Kernel&& kernel) {
  static const double ref_baseline = reference_seconds();
  std::vector<double> rates;
  for (int r = 0; r < o.repeat; ++r) {
    const double ref_now = reference_seconds();
    double total = 0.0;
    long iters = 0;
    while (total < o.min_seconds && iters < 100000) {
      setup();
      Timer t;
      kernel();
      total += t.elapsed();
      ++iters;
    }
    if (total > 0.0 && ref_now > 0.0) {
      const double drift = ref_now / ref_baseline;  // > 1 when host is slow
      rates.push_back(drift * work * static_cast<double>(iters) / total);
    }
  }
  if (rates.empty()) return 0.0;
  std::sort(rates.begin(), rates.end());
  return rates[rates.size() / 2];
}

/// Replica count so rotating input/output sets defeat per-core (L1/L2)
/// warmth: repeating a kernel on one buffer measures L1-warm rates real
/// tasks never see.  The budget deliberately stays *below* a typical
/// shared LLC -- real update tasks touch panels that other tasks recently
/// wrote, so their data is L2-cold but LLC-resident; pushing the rotation
/// past the LLC would instead measure DRAM-cold rates and (through the
/// monotone fit) drag every mid-sized prediction up with them.
std::size_t replicas_for(std::size_t bytes) {
  constexpr std::size_t kColdBudget = 8u << 20;  // > L2, < typical LLC
  if (bytes == 0) return 1;
  return std::clamp<std::size_t>(kColdBudget / bytes + 1, 2, 128);
}

/// Diagonally dominant n x n base matrix (SPD enough for every factor
/// kernel, well-conditioned so repeated TRSMs stay out of denormals).
std::vector<real_t> dominant_matrix(index_t n, Rng& rng) {
  std::vector<real_t> a(static_cast<std::size_t>(n) * n);
  fill_random(a, rng);
  for (index_t j = 0; j < n; ++j) {
    a[static_cast<std::size_t>(j) * n + j] = 2.0 * static_cast<double>(n);
  }
  return a;
}

CalPoint factor_point(KernelClass c, index_t n,
                      const CalibrationOptions& o) {
  Rng rng(7 + n);
  const std::vector<real_t> base = dominant_matrix(n, rng);
  std::vector<real_t> work_mat;
  const KernelShape shape{static_cast<double>(n), static_cast<double>(n),
                          static_cast<double>(n)};
  const double w = kernel_work(c, shape);
  const double rate = measure_rate(
      w, o, [&] { work_mat = base; },
      [&] {
        switch (c) {
          case KernelClass::Potrf:
            kernels::potrf<real_t>(n, work_mat.data(), n);
            break;
          case KernelClass::Ldlt:
            kernels::ldlt<real_t>(n, work_mat.data(), n);
            break;
          case KernelClass::Getrf:
            kernels::getrf_nopiv<real_t>(n, work_mat.data(), n);
            break;
          default:
            SPX_ASSERT(false);
        }
      });
  return {shape, w, rate, o.repeat};
}

CalPoint trsm_point(index_t m, index_t n, const CalibrationOptions& o) {
  Rng rng(11 + m + n);
  const std::vector<real_t> l = dominant_matrix(n, rng);
  std::vector<real_t> x_base(static_cast<std::size_t>(m) * n);
  fill_random(x_base, rng);
  // The triangle stays warm (it was just factored when the real TRSM
  // runs); the solved panel rows rotate cold.  Each setup re-initializes
  // a replica half a cycle *ahead* of use, so the refill's cache warmth
  // has been evicted again by the time that replica is solved.
  const std::size_t reps = replicas_for(sizeof(real_t) * x_base.size());
  std::vector<std::vector<real_t>> xs(reps, x_base);
  const KernelShape shape{static_cast<double>(m), static_cast<double>(n),
                          static_cast<double>(n)};
  const double w = kernel_work(KernelClass::TrsmPanel, shape);
  std::size_t idx = 0;
  const double rate = measure_rate(
      w, o, [&] { xs[(idx + reps / 2) % reps] = x_base; },
      [&] {
        kernels::trsm_right_lower_trans<real_t>(m, n, l.data(), n,
                                                xs[idx].data(), m,
                                                /*unit_diag=*/false);
        idx = (idx + 1) % reps;
      });
  return {shape, w, rate, o.repeat};
}

CalPoint gemm_point(index_t m, index_t n, index_t k,
                    const CalibrationOptions& o) {
  Rng rng(13 + m + n + k);
  const std::size_t foot =
      sizeof(real_t) * (static_cast<std::size_t>(m) * k +
                        static_cast<std::size_t>(n) * k +
                        static_cast<std::size_t>(m) * n);
  const std::size_t reps = replicas_for(foot);
  std::vector<std::vector<real_t>> as(reps), bs(reps), cs(reps);
  for (std::size_t r = 0; r < reps; ++r) {
    as[r].resize(static_cast<std::size_t>(m) * k);
    bs[r].resize(static_cast<std::size_t>(n) * k);
    cs[r].assign(static_cast<std::size_t>(m) * n, 0.0);
    fill_random(as[r], rng);
    fill_random(bs[r], rng);
  }
  const KernelShape shape{static_cast<double>(m), static_cast<double>(n),
                          static_cast<double>(k)};
  const double w = kernel_work(KernelClass::GemmNt, shape);
  std::size_t idx = 0;
  const double rate = measure_rate(
      w, o, [] {},
      [&] {
        kernels::gemm_nt<real_t>(m, n, k, -1.0, as[idx].data(), m,
                                 bs[idx].data(), n, 1.0, cs[idx].data(), m);
        idx = (idx + 1) % reps;
      });
  return {shape, w, rate, o.repeat};
}

/// Synthetic gapped destination: m source rows in 4 segments, each
/// followed by a gap of m/8 rows, mimicking a sparse update whose target
/// panel stores ~1.4x the updated rows.
std::vector<kernels::RowSegment> synthetic_segments(index_t m,
                                                    index_t* dst_rows) {
  const index_t nseg = 4;
  const index_t seg = std::max<index_t>(1, m / nseg);
  const index_t gap = std::max<index_t>(1, m / 8);
  std::vector<kernels::RowSegment> segs;
  index_t src = 0, dst = 0;
  while (src < m) {
    const index_t len = std::min(seg, m - src);
    segs.push_back({src, dst, len});
    src += len;
    dst += len + gap;
  }
  *dst_rows = dst;
  return segs;
}

CalPoint gapped_gemm_point(index_t m, index_t n, index_t k,
                           const CalibrationOptions& o) {
  Rng rng(17 + m + n + k);
  index_t dst_rows = 0;
  const std::vector<kernels::RowSegment> segs =
      synthetic_segments(m, &dst_rows);
  const std::size_t foot =
      sizeof(real_t) * (static_cast<std::size_t>(m) * k +
                        static_cast<std::size_t>(n) * k +
                        static_cast<std::size_t>(dst_rows) * n);
  const std::size_t reps = replicas_for(foot);
  std::vector<std::vector<real_t>> as(reps), bs(reps), dsts(reps);
  for (std::size_t r = 0; r < reps; ++r) {
    as[r].resize(static_cast<std::size_t>(m) * k);
    bs[r].resize(static_cast<std::size_t>(n) * k);
    dsts[r].assign(static_cast<std::size_t>(dst_rows) * n, 0.0);
    fill_random(as[r], rng);
    fill_random(bs[r], rng);
  }
  const KernelShape shape{static_cast<double>(m), static_cast<double>(n),
                          static_cast<double>(k)};
  const double w = kernel_work(KernelClass::GemmNtGapped, shape);
  std::size_t idx = 0;
  const double rate = measure_rate(
      w, o, [] {},
      [&] {
        kernels::gemm_nt_gapped<real_t>(segs, n, k, real_t(-1),
                                        as[idx].data(), m, bs[idx].data(),
                                        n, dsts[idx].data(), dst_rows, 0);
        idx = (idx + 1) % reps;
      });
  return {shape, w, rate, o.repeat};
}

CalPoint scatter_point(index_t m, index_t n, const CalibrationOptions& o) {
  Rng rng(19 + m + n);
  index_t dst_rows = 0;
  const std::vector<kernels::RowSegment> segs =
      synthetic_segments(m, &dst_rows);
  // The W buffer stays warm on purpose (the real codelet's GEMM just
  // wrote it); only the scattered-into destination panels rotate cold.
  std::vector<real_t> wbuf(static_cast<std::size_t>(m) * n);
  fill_random(wbuf, rng);
  const std::size_t reps =
      replicas_for(sizeof(real_t) * static_cast<std::size_t>(dst_rows) * n);
  std::vector<std::vector<real_t>> dsts(reps);
  for (std::size_t r = 0; r < reps; ++r) {
    dsts[r].assign(static_cast<std::size_t>(dst_rows) * n, 0.0);
  }
  const KernelShape shape{static_cast<double>(m), static_cast<double>(n),
                          0.0};
  const double w = kernel_work(KernelClass::Scatter, shape);
  std::size_t idx = 0;
  const double rate = measure_rate(
      w, o, [] {},
      [&] {
        kernels::scatter_sub<real_t>(segs, n, wbuf.data(), m,
                                     dsts[idx].data(), dst_rows, 0);
        idx = (idx + 1) % reps;
      });
  return {shape, w, rate, o.repeat};
}

}  // namespace

CalPoint measure_point(KernelClass c, const KernelShape& shape,
                       const CalibrationOptions& options) {
  CalibrationOptions o = options;
  if (o.quick) {
    o.repeat = 2;
    o.min_seconds = std::min(o.min_seconds, 1e-3);
  }
  const auto m = static_cast<index_t>(shape.m);
  const auto n = static_cast<index_t>(shape.n);
  const auto k = static_cast<index_t>(shape.k);
  switch (c) {
    case KernelClass::Potrf:
    case KernelClass::Ldlt:
    case KernelClass::Getrf:
      return factor_point(c, n, o);
    case KernelClass::TrsmPanel:
      return trsm_point(m, n, o);
    case KernelClass::GemmNt:
      return gemm_point(m, n, k, o);
    case KernelClass::GemmNtGapped:
      return gapped_gemm_point(m, n, k, o);
    case KernelClass::Scatter:
      return scatter_point(m, n, o);
  }
  SPX_ASSERT(false);
  return {};
}

PerfModel calibrate_kernels(const CalibrationOptions& options) {
  CalibrationOptions o = options;
  if (o.quick) {
    o.repeat = 2;
    o.min_seconds = std::min(o.min_seconds, 1e-3);
  }
  const std::vector<index_t> factor_n =
      o.quick ? std::vector<index_t>{8, 48}
              : std::vector<index_t>{4, 8, 16, 32, 64, 96, 128};
  const std::vector<index_t> trsm_w =
      o.quick ? std::vector<index_t>{8, 32}
              : std::vector<index_t>{8, 16, 32, 64, 128};
  const std::vector<index_t> trsm_ratio =
      o.quick ? std::vector<index_t>{1, 4} : std::vector<index_t>{1, 4, 12};
  const std::vector<index_t> gemm_k =
      o.quick ? std::vector<index_t>{16, 32, 64}
              : std::vector<index_t>{16, 32, 64, 128};
  // (m, n) multipliers of k per point: square-ish small blocks up to the
  // tall trailing updates the supernodal DAG actually produces.
  const std::vector<std::pair<index_t, index_t>> gemm_mn =
      o.quick ? std::vector<std::pair<index_t, index_t>>{
                    {1, 1}, {4, 2}, {12, 4}}
              : std::vector<std::pair<index_t, index_t>>{
                    {1, 1}, {4, 2}, {12, 4}};
  // Thin-block (m, n, k) shapes: sparse update tasks are dominated by
  // GEMMs whose middle dimension is a small block height; the effective-
  // work key needs measured anchors in that regime too.  The quick grid
  // keeps a mid-size square and a large anchor: the packed SIMD GEMM's
  // rate curve has a knee where packing starts to amortize, and a grid
  // without points on both sides of it mispredicts every mid-size shape.
  const std::vector<std::array<index_t, 3>> gemm_thin =
      o.quick ? std::vector<std::array<index_t, 3>>{{256, 4, 64},
                                                    {96, 96, 96},
                                                    {320, 160, 80}}
              : std::vector<std::array<index_t, 3>>{{256, 2, 64},
                                                    {256, 4, 128},
                                                    {512, 8, 128},
                                                    {512, 16, 96},
                                                    {768, 12, 64},
                                                    {1024, 4, 32},
                                                    // square-ish mid
                                                    // shapes whose keys
                                                    // fall between the
                                                    // thin anchors
                                                    {96, 96, 96},
                                                    {160, 64, 64},
                                                    {224, 112, 56}};
  const std::vector<std::pair<index_t, index_t>> scatter_mn =
      o.quick
          ? std::vector<std::pair<index_t, index_t>>{{64, 32}, {256, 64}}
          : std::vector<std::pair<index_t, index_t>>{
                {64, 32}, {256, 64}, {1024, 128}, {2048, 128}};

  PerfModel model;
  model.set_host(o.host);

  for (const KernelClass c :
       {KernelClass::Potrf, KernelClass::Ldlt, KernelClass::Getrf}) {
    KernelTable t;
    for (const index_t n : factor_n) t.add(factor_point(c, n, o));
    t.fit();
    model.set_table(c, ResourceKind::Cpu, std::move(t));
  }
  {
    KernelTable t;
    for (const index_t w : trsm_w) {
      for (const index_t r : trsm_ratio) t.add(trsm_point(w * r, w, o));
    }
    t.fit();
    model.set_table(KernelClass::TrsmPanel, ResourceKind::Cpu,
                    std::move(t));
  }
  {
    KernelTable t;
    for (const index_t k : gemm_k) {
      for (const auto& [rm, rn] : gemm_mn) {
        t.add(gemm_point(k * rm, k * rn, k, o));
      }
    }
    for (const auto& [m, n, k] : gemm_thin) t.add(gemm_point(m, n, k, o));
    t.fit();
    model.set_table(KernelClass::GemmNt, ResourceKind::Cpu, std::move(t));
  }
  {
    KernelTable t;
    for (const index_t k : gemm_k) {
      for (const auto& [rm, rn] : gemm_mn) {
        t.add(gapped_gemm_point(k * rm, k * rn, k, o));
      }
    }
    for (const auto& [m, n, k] : gemm_thin) {
      t.add(gapped_gemm_point(m, n, k, o));
    }
    t.fit();
    // The Direct path is what GPU-stream workers execute in the real
    // driver; the CPU slot is kept too so a Direct cpu_variant can be
    // modelled.
    model.set_table(KernelClass::GemmNtGapped, ResourceKind::GpuStream, t);
    model.set_table(KernelClass::GemmNtGapped, ResourceKind::Cpu,
                    std::move(t));
  }
  {
    KernelTable t;
    for (const auto& [m, n] : scatter_mn) t.add(scatter_point(m, n, o));
    t.fit();
    model.set_table(KernelClass::Scatter, ResourceKind::Cpu, std::move(t));
  }
  return model;
}

}  // namespace spx::perfmodel
