// Versioned, checksummed on-disk snapshot of one completed factorization:
// the full Analysis (ordering + block symbolic structure) plus the
// numerical factor arrays, keyed by (pattern digest, value hash, kind).
//
// The analyze-once/factor-many structure (paper §III) makes this state
// deterministic and perfectly reusable across process restarts: a shard
// that replays its snapshots on startup serves warm factorize hits (and
// solves against pre-crash factor ids) without redoing a single flop.
//
// Format (everything little-endian, like the wire protocol):
//   magic   u32  'S''P''X''S'
//   version u32  kSnapshotVersion
//   length  u64  body bytes that follow the checksum field
//   crc     u32  CRC32C over the body
//   body         digest, value hash, kind, factor id, Analysis, quality,
//                L/U/D value arrays (layout in snapshot.cpp)
// A truncated file, flipped bit, or version skew fails decode_snapshot
// with SnapshotError -- the loader skips the file and starts cold; a
// corrupt snapshot must never crash or silently warm a wrong factor.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <stdexcept>
#include <vector>

#include "common/factor_quality.hpp"
#include "core/analysis.hpp"

namespace spx::persist {

/// Thrown by decode_snapshot on any malformed, truncated, corrupt, or
/// version-skewed input.  Loaders treat it as "this file does not exist".
class SnapshotError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Snapshot file magic: the bytes 'S' 'P' 'X' 'S' in order.
inline constexpr std::uint32_t kSnapshotMagic = 0x53585053u;
/// Bumped on any layout change; a mismatch rejects the file (cold start).
/// v2 added a precision byte after the factorization kind.
inline constexpr std::uint32_t kSnapshotVersion = 2;
/// Fixed prefix before the body: magic + version + length + crc.
inline constexpr std::size_t kSnapshotHeaderBytes = 20;

/// One factorization's persistent state, in memory.
struct FactorSnapshot {
  std::uint64_t pattern_digest = 0;  ///< routing/cache key of the pattern
  std::uint64_t value_hash = 0;      ///< FNV-1a over the matrix value bytes
  Factorization kind = Factorization::LLT;
  /// Storage precision of the value arrays below.  Only 0 (fp64) is
  /// written today: fp32 factors are memory-only because iterative
  /// refinement needs the reference matrix, which snapshots don't carry.
  /// The byte is in the format so a future fp32 layout bumps data, not
  /// framing; loaders reject values they don't understand.
  std::uint8_t precision = 0;
  std::uint64_t factor_id = 0;  ///< shard-assigned id (stable across restart)
  std::shared_ptr<const Analysis> analysis;
  FactorQuality quality;
  std::vector<real_t> lval;
  std::vector<real_t> uval;  ///< LU only
  std::vector<real_t> dval;  ///< LDLT only
};

/// Endian-stable FNV-1a over a value array's bytes: distinguishes two
/// matrices sharing a pattern but carrying different values (a warm hit
/// must reproduce the factorization bit-for-bit, so values must match).
std::uint64_t value_hash(std::span<const real_t> values);

/// Serializes a snapshot (header + checksummed body), ready to write.
std::vector<std::uint8_t> encode_snapshot(const FactorSnapshot& snap);

/// Parses and validates a snapshot file image.  Throws SnapshotError on
/// bad magic, version skew, truncation, checksum mismatch, or an
/// Analysis that fails structural validation.
FactorSnapshot decode_snapshot(std::span<const std::uint8_t> bytes);

}  // namespace spx::persist
