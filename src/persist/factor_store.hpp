// Durable factor store: asynchronous, rate-limited snapshot writer plus
// a startup loader, backed by one directory of `<digest>-<kind>.spxsnap`
// files (format: persist/snapshot.hpp).
//
// Writes happen on a dedicated background thread so the shard's event
// loop never blocks on disk: save() enqueues a deep-ish copy (the value
// arrays move in from the caller's staging copy; the Analysis is shared,
// immutable state) and returns.  Each key is rate-limited -- a pattern
// being refactorized in a tight loop rewrites its snapshot at most once
// per `min_interval_s` -- and every write is crash-atomic: the bytes go
// to a `.tmp` sibling first, then ::rename() into place, so a reader
// never observes a half-written file and a crash mid-write leaves the
// previous snapshot intact.
//
// load_all() is deliberately forgiving: a file that fails to decode
// (truncated, bit-flipped, version-skewed) is logged and skipped -- the
// shard starts cold for that pattern instead of crashing.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "persist/snapshot.hpp"

namespace spx::persist {

struct FactorStoreOptions {
  /// Directory holding the snapshot files; created if missing.
  std::string dir;
  /// Minimum seconds between two writes of the same (digest, kind) key;
  /// rewrites arriving sooner are dropped (counted, not queued).
  double min_interval_s = 5.0;
};

/// One recovered snapshot plus where it came from (for logging).
struct LoadedSnapshot {
  FactorSnapshot snap;
  std::string path;
};

class FactorStore {
 public:
  explicit FactorStore(FactorStoreOptions options);
  ~FactorStore();

  FactorStore(const FactorStore&) = delete;
  FactorStore& operator=(const FactorStore&) = delete;

  /// Enqueues an asynchronous write of `snap` (moved from).  Returns
  /// false when the key was written less than min_interval_s ago and the
  /// request was dropped.  Thread-safe.
  bool save(FactorSnapshot snap);

  /// Reads every *.spxsnap file in the directory, skipping (with a
  /// warning) any that fail to decode.  Call before serving traffic;
  /// does not race the writer thread because nothing has been saved yet.
  std::vector<LoadedSnapshot> load_all();

  /// Blocks until every enqueued write has hit the filesystem (tests).
  void flush();

  /// Snapshot path for a key, e.g. "<dir>/0000000012345678-llt.spxsnap".
  std::string path_for(std::uint64_t digest, Factorization kind) const;

  std::uint64_t writes() const { return writes_; }
  std::uint64_t write_errors() const { return write_errors_; }
  std::uint64_t rate_limited() const { return rate_limited_; }

 private:
  void writer_loop();
  void write_one(const FactorSnapshot& snap);

  FactorStoreOptions options_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  std::deque<FactorSnapshot> queue_;
  /// steady-clock seconds of the last accepted save per (digest, kind).
  std::unordered_map<std::uint64_t, double> last_save_;
  bool stop_ = false;
  bool busy_ = false;
  std::uint64_t writes_ = 0;
  std::uint64_t write_errors_ = 0;
  std::uint64_t rate_limited_ = 0;
  std::thread writer_;
};

}  // namespace spx::persist
