#include "persist/factor_store.hpp"

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "common/error.hpp"
#include "common/log.hpp"

namespace spx::persist {

namespace fs = std::filesystem;

namespace {

double steady_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

const char* kind_slug(Factorization kind) {
  switch (kind) {
    case Factorization::LLT:
      return "llt";
    case Factorization::LDLT:
      return "ldlt";
    case Factorization::LU:
      return "lu";
  }
  return "unknown";
}

/// Rate-limit key: digest mixed with the kind (two kinds of the same
/// pattern are independent snapshots).
std::uint64_t limit_key(std::uint64_t digest, Factorization kind) {
  return digest * 3u + static_cast<std::uint64_t>(kind);
}

}  // namespace

FactorStore::FactorStore(FactorStoreOptions options)
    : options_(std::move(options)) {
  SPX_CHECK_ARG(!options_.dir.empty(), "FactorStore needs a directory");
  std::error_code ec;
  fs::create_directories(options_.dir, ec);
  if (ec) {
    logf(LogLevel::Warn, "persist: cannot create %s: %s (writes will fail)",
         options_.dir.c_str(), ec.message().c_str());
  }
  writer_ = std::thread([this] { writer_loop(); });
}

FactorStore::~FactorStore() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  if (writer_.joinable()) writer_.join();
}

std::string FactorStore::path_for(std::uint64_t digest,
                                  Factorization kind) const {
  char name[64];
  std::snprintf(name, sizeof(name), "%016llx-%s.spxsnap",
                static_cast<unsigned long long>(digest), kind_slug(kind));
  return (fs::path(options_.dir) / name).string();
}

bool FactorStore::save(FactorSnapshot snap) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (stop_) return false;
  const std::uint64_t key = limit_key(snap.pattern_digest, snap.kind);
  const double now = steady_seconds();
  auto it = last_save_.find(key);
  if (it != last_save_.end() && now - it->second < options_.min_interval_s) {
    ++rate_limited_;
    return false;
  }
  last_save_[key] = now;
  queue_.push_back(std::move(snap));
  cv_.notify_one();
  return true;
}

void FactorStore::flush() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && !busy_; });
}

void FactorStore::writer_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
    if (queue_.empty()) return;  // stop_ with a drained queue
    FactorSnapshot snap = std::move(queue_.front());
    queue_.pop_front();
    busy_ = true;
    lock.unlock();
    write_one(snap);
    lock.lock();
    busy_ = false;
    if (queue_.empty()) idle_cv_.notify_all();
  }
}

void FactorStore::write_one(const FactorSnapshot& snap) {
  const std::string path = path_for(snap.pattern_digest, snap.kind);
  const std::string tmp = path + ".tmp";
  try {
    const std::vector<std::uint8_t> bytes = encode_snapshot(snap);
    {
      std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
      if (!out) throw std::runtime_error("cannot open " + tmp);
      out.write(reinterpret_cast<const char*>(bytes.data()),
                static_cast<std::streamsize>(bytes.size()));
      out.flush();
      if (!out) throw std::runtime_error("short write to " + tmp);
    }
    // rename(2) is atomic within a filesystem: readers see either the
    // old snapshot or the new one, never a torn file.
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
      throw std::runtime_error(std::string("rename: ") + std::strerror(errno));
    }
    std::lock_guard<std::mutex> lock(mutex_);
    ++writes_;
  } catch (const std::exception& e) {
    std::error_code ec;
    fs::remove(tmp, ec);
    logf(LogLevel::Warn, "persist: writing %s failed: %s", path.c_str(),
         e.what());
    std::lock_guard<std::mutex> lock(mutex_);
    ++write_errors_;
  }
}

std::vector<LoadedSnapshot> FactorStore::load_all() {
  std::vector<LoadedSnapshot> out;
  std::error_code ec;
  fs::directory_iterator it(options_.dir, ec);
  if (ec) return out;
  for (const auto& entry : it) {
    if (!entry.is_regular_file(ec)) continue;
    const fs::path& p = entry.path();
    if (p.extension() != ".spxsnap") continue;
    std::ifstream in(p, std::ios::binary);
    if (!in) {
      logf(LogLevel::Warn, "persist: cannot read %s, skipping",
           p.string().c_str());
      continue;
    }
    std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                                    std::istreambuf_iterator<char>());
    try {
      LoadedSnapshot loaded;
      loaded.snap = decode_snapshot(bytes);
      loaded.path = p.string();
      out.push_back(std::move(loaded));
    } catch (const SnapshotError& e) {
      // Cold start for this pattern; a corrupt snapshot must never
      // crash the shard or warm a wrong factor.
      logf(LogLevel::Warn, "persist: rejecting %s: %s", p.string().c_str(),
           e.what());
    }
  }
  return out;
}

}  // namespace spx::persist
