#include "persist/snapshot.hpp"

#include <bit>
#include <cstring>
#include <limits>

#include "common/crc32c.hpp"

namespace spx::persist {

namespace {

// Little-endian body serializer, same conventions as the wire protocol's
// WireWriter/WireReader (net/protocol.cpp) but throwing SnapshotError so
// a corrupt file never surfaces as a protocol complaint.

class Writer {
 public:
  explicit Writer(std::vector<std::uint8_t>& out) : out_(out) {}

  void u8(std::uint8_t v) { out_.push_back(v); }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

  void index_array(std::span<const index_t> v) {
    u64(v.size());
    for (const index_t x : v) i32(x);
  }
  void real_array(std::span<const real_t> v) {
    u64(v.size());
    if constexpr (std::endian::native == std::endian::little) {
      const auto* p = reinterpret_cast<const std::uint8_t*>(v.data());
      out_.insert(out_.end(), p, p + v.size() * sizeof(real_t));
    } else {
      for (const real_t x : v) f64(x);
    }
  }

 private:
  std::vector<std::uint8_t>& out_;
};

class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  std::uint8_t u8() { return take(1)[0]; }
  std::uint32_t u32() {
    const auto b = take(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= std::uint32_t(b[i]) << (8 * i);
    return v;
  }
  std::uint64_t u64() {
    const auto b = take(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= std::uint64_t(b[i]) << (8 * i);
    return v;
  }
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64() { return std::bit_cast<double>(u64()); }

  std::vector<index_t> index_array() {
    const std::uint64_t n = count(sizeof(index_t));
    std::vector<index_t> v(static_cast<std::size_t>(n));
    for (auto& x : v) x = i32();
    return v;
  }
  std::vector<real_t> real_array() {
    const std::uint64_t n = count(sizeof(real_t));
    std::vector<real_t> v(static_cast<std::size_t>(n));
    if constexpr (std::endian::native == std::endian::little) {
      const auto b = take(v.size() * sizeof(real_t));
      if (!b.empty()) std::memcpy(v.data(), b.data(), b.size());
    } else {
      for (auto& x : v) x = f64();
    }
    return v;
  }

  std::size_t remaining() const { return bytes_.size() - pos_; }
  void expect_end() const {
    if (remaining() != 0) {
      throw SnapshotError("trailing bytes after snapshot body");
    }
  }

 private:
  std::uint64_t count(std::size_t elem) {
    const std::uint64_t n = u64();
    if (n > remaining() / elem) {
      throw SnapshotError("snapshot array extends past end of file");
    }
    return n;
  }
  std::span<const std::uint8_t> take(std::size_t n) {
    if (n > remaining()) throw SnapshotError("truncated snapshot body");
    const auto s = bytes_.subspan(pos_, n);
    pos_ += n;
    return s;
  }

  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
};

void write_quality(Writer& w, const FactorQuality& q) {
  w.i32(q.perturbed_pivots);
  w.index_array(q.perturbed_columns);
  w.f64(q.min_pivot);
  w.f64(q.max_pivot);
  w.f64(q.anorm);
  w.f64(q.threshold);
  w.u8(q.indefinite ? 1 : 0);
}

FactorQuality read_quality(Reader& r) {
  FactorQuality q;
  q.perturbed_pivots = r.i32();
  q.perturbed_columns = r.index_array();
  q.min_pivot = r.f64();
  q.max_pivot = r.f64();
  q.anorm = r.f64();
  q.threshold = r.f64();
  q.indefinite = r.u8() != 0;
  return q;
}

void write_analysis(Writer& w, const Analysis& an) {
  w.i64(an.nnz_a);
  w.i64(an.amalgamation_fill);
  w.index_array(an.perm.new_to_old);
  const SymbolicStructure& st = an.structure;
  w.u64(st.panels.size());
  for (const Panel& p : st.panels) {
    w.i32(p.col_begin);
    w.i32(p.col_end);
    w.i32(p.supernode);
    w.i64(p.storage_offset);
    w.i32(p.nrows);
    w.u64(p.blocks.size());
    for (const Block& b : p.blocks) {
      w.i32(b.row_begin);
      w.i32(b.row_end);
      w.i32(b.facing_panel);
      w.i32(b.offset);
    }
  }
  w.index_array(st.panel_of_col);
  w.u64(st.targets.size());
  for (const auto& edges : st.targets) {
    w.u64(edges.size());
    for (const UpdateEdge& e : edges) {
      w.i32(e.dst);
      w.i32(e.first_block);
      w.i32(e.last_block);
    }
  }
  w.index_array(st.in_degree);
  w.i64(st.factor_entries);
  w.i64(st.nnz_factor);
}

Analysis read_analysis(Reader& r) {
  Analysis an;
  an.nnz_a = r.i64();
  an.amalgamation_fill = r.i64();
  std::vector<index_t> new_to_old = r.index_array();
  try {
    an.perm = Ordering::from_new_to_old(std::move(new_to_old));
  } catch (const std::exception& e) {
    throw SnapshotError(std::string("snapshot ordering invalid: ") +
                        e.what());
  }
  SymbolicStructure& st = an.structure;
  const std::uint64_t npanels = r.u64();
  if (npanels > static_cast<std::uint64_t>(
                    std::numeric_limits<index_t>::max())) {
    throw SnapshotError("snapshot panel count overflows index_t");
  }
  st.panels.reserve(static_cast<std::size_t>(npanels));
  for (std::uint64_t i = 0; i < npanels; ++i) {
    Panel p;
    p.col_begin = r.i32();
    p.col_end = r.i32();
    p.supernode = r.i32();
    p.storage_offset = r.i64();
    p.nrows = r.i32();
    const std::uint64_t nblocks = r.u64();
    if (nblocks > r.remaining() / 16) {
      throw SnapshotError("snapshot block count exceeds file size");
    }
    p.blocks.reserve(static_cast<std::size_t>(nblocks));
    for (std::uint64_t j = 0; j < nblocks; ++j) {
      Block b;
      b.row_begin = r.i32();
      b.row_end = r.i32();
      b.facing_panel = r.i32();
      b.offset = r.i32();
      p.blocks.push_back(b);
    }
    st.panels.push_back(std::move(p));
  }
  st.panel_of_col = r.index_array();
  const std::uint64_t ntargets = r.u64();
  if (ntargets != npanels) {
    throw SnapshotError("snapshot target-list count mismatches panels");
  }
  st.targets.resize(static_cast<std::size_t>(ntargets));
  for (auto& edges : st.targets) {
    const std::uint64_t nedges = r.u64();
    if (nedges > r.remaining() / 12) {
      throw SnapshotError("snapshot edge count exceeds file size");
    }
    edges.reserve(static_cast<std::size_t>(nedges));
    for (std::uint64_t j = 0; j < nedges; ++j) {
      UpdateEdge e;
      e.dst = r.i32();
      e.first_block = r.i32();
      e.last_block = r.i32();
      edges.push_back(e);
    }
  }
  st.in_degree = r.index_array();
  st.factor_entries = r.i64();
  st.nnz_factor = r.i64();
  return an;
}

}  // namespace

std::uint64_t value_hash(std::span<const real_t> values) {
  // FNV-1a over the canonical little-endian byte image of each value
  // (endian-stable, like pattern_digest in mat/csc.hpp).
  std::uint64_t h = 14695981039346656037ull;
  const auto mix = [&h](std::uint8_t byte) {
    h ^= byte;
    h *= 1099511628211ull;
  };
  for (const real_t v : values) {
    const std::uint64_t bits = std::bit_cast<std::uint64_t>(v);
    for (int i = 0; i < 8; ++i) {
      mix(static_cast<std::uint8_t>(bits >> (8 * i)));
    }
  }
  return h;
}

std::vector<std::uint8_t> encode_snapshot(const FactorSnapshot& snap) {
  SPX_CHECK_ARG(snap.analysis != nullptr,
                "encode_snapshot: snapshot has no analysis");
  std::vector<std::uint8_t> body;
  {
    Writer w(body);
    w.u64(snap.pattern_digest);
    w.u64(snap.value_hash);
    w.u8(static_cast<std::uint8_t>(snap.kind));
    w.u8(snap.precision);
    w.u64(snap.factor_id);
    write_analysis(w, *snap.analysis);
    write_quality(w, snap.quality);
    w.real_array(snap.lval);
    w.real_array(snap.uval);
    w.real_array(snap.dval);
  }
  std::vector<std::uint8_t> out;
  out.reserve(kSnapshotHeaderBytes + body.size());
  Writer h(out);
  h.u32(kSnapshotMagic);
  h.u32(kSnapshotVersion);
  h.u64(body.size());
  h.u32(crc32c(body.data(), body.size()));
  out.insert(out.end(), body.begin(), body.end());
  return out;
}

FactorSnapshot decode_snapshot(std::span<const std::uint8_t> bytes) {
  if (bytes.size() < kSnapshotHeaderBytes) {
    throw SnapshotError("snapshot shorter than its header");
  }
  Reader h(bytes.first(kSnapshotHeaderBytes));
  if (h.u32() != kSnapshotMagic) {
    throw SnapshotError("bad snapshot magic");
  }
  const std::uint32_t version = h.u32();
  if (version != kSnapshotVersion) {
    throw SnapshotError("snapshot version skew: file v" +
                        std::to_string(version) + ", loader v" +
                        std::to_string(kSnapshotVersion));
  }
  const std::uint64_t length = h.u64();
  const std::uint32_t crc = h.u32();
  if (bytes.size() - kSnapshotHeaderBytes != length) {
    throw SnapshotError("snapshot body length mismatch (truncated file?)");
  }
  const auto body = bytes.subspan(kSnapshotHeaderBytes);
  if (crc32c(body.data(), body.size()) != crc) {
    throw SnapshotError("snapshot checksum mismatch (corrupted file)");
  }

  Reader r(body);
  FactorSnapshot snap;
  snap.pattern_digest = r.u64();
  snap.value_hash = r.u64();
  const std::uint8_t kind = r.u8();
  if (kind > static_cast<std::uint8_t>(Factorization::LU)) {
    throw SnapshotError("unknown factorization kind in snapshot");
  }
  snap.kind = static_cast<Factorization>(kind);
  snap.precision = r.u8();
  if (snap.precision != 0) {
    throw SnapshotError("unknown snapshot precision " +
                        std::to_string(int(snap.precision)) +
                        " (only fp64 snapshots are supported)");
  }
  snap.factor_id = r.u64();
  Analysis an = read_analysis(r);
  snap.quality = read_quality(r);
  snap.lval = r.real_array();
  snap.uval = r.real_array();
  snap.dval = r.real_array();
  r.expect_end();

  // Structural validation: a snapshot passing the CRC could still have
  // been written by a buggy producer; never hand the factor kernels an
  // inconsistent block structure.
  try {
    an.structure.validate();
  } catch (const std::exception& e) {
    throw SnapshotError(std::string("snapshot structure invalid: ") +
                        e.what());
  }
  const auto entries = static_cast<std::size_t>(an.structure.factor_entries);
  const auto ncols = static_cast<std::size_t>(an.structure.num_cols());
  const bool sizes_ok =
      snap.lval.size() == entries &&
      snap.uval.size() ==
          (snap.kind == Factorization::LU ? entries : std::size_t{0}) &&
      snap.dval.size() ==
          (snap.kind == Factorization::LDLT ? ncols : std::size_t{0});
  if (!sizes_ok) {
    throw SnapshotError("snapshot value arrays mismatch the structure");
  }
  snap.analysis = std::make_shared<const Analysis>(std::move(an));
  return snap;
}

}  // namespace spx::persist
