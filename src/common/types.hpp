// Fundamental scalar/index types shared across the library.
#pragma once

#include <complex>
#include <cstdint>
#include <type_traits>

namespace spx {

/// Index type used for matrix dimensions and sparse structures.  Sparse
/// direct solvers routinely exceed 2^31 nonzeros in L, so row/column
/// *pointer* arrays use 64 bits while index arrays stay at 32 bits
/// (all paper matrices have < 2^31 rows).
using index_t = std::int32_t;
using size_type = std::int64_t;

using real_t = double;
using complex_t = std::complex<double>;

/// Single-precision scalar used by the mixed-precision path (factor in
/// float, refine in double).
using real32_t = float;

/// True for the scalar types the solver supports.
template <typename T>
inline constexpr bool is_supported_scalar_v =
    std::is_same_v<T, real_t> || std::is_same_v<T, complex_t> ||
    std::is_same_v<T, real32_t>;

/// Maps a scalar type to its real magnitude type.
template <typename T>
struct real_of {
  using type = T;
};
template <typename T>
struct real_of<std::complex<T>> {
  using type = T;
};
template <typename T>
using real_of_t = typename real_of<T>::type;

template <typename T>
inline constexpr bool is_complex_v = !std::is_same_v<T, real_of_t<T>>;

/// Magnitude of a scalar (|x|) as its real type.
template <typename T>
real_of_t<T> magnitude(T x) {
  if constexpr (is_complex_v<T>) {
    return std::abs(x);
  } else {
    return x < T(0) ? -x : x;
  }
}

/// Precision tag used in reports (paper's Table I "Prec" column).
enum class Precision { D, Z };

template <typename T>
constexpr Precision precision_of() {
  if constexpr (is_complex_v<T>) {
    return Precision::Z;
  } else {
    return Precision::D;
  }
}

inline const char* to_string(Precision p) {
  return p == Precision::D ? "D" : "Z";
}

/// Factorization kinds supported by the solver (paper §III).
enum class Factorization {
  LLT,   ///< Cholesky, symmetric positive definite
  LDLT,  ///< LDL^T, symmetric (possibly indefinite, complex-symmetric)
  LU     ///< LU with static pivoting, general matrices
};

inline const char* to_string(Factorization f) {
  switch (f) {
    case Factorization::LLT:
      return "LLT";
    case Factorization::LDLT:
      return "LDLT";
    case Factorization::LU:
      return "LU";
  }
  return "?";
}

}  // namespace spx
