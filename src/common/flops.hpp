// Floating-point operation counts for the factorization kernels.
//
// These counts serve two purposes: (1) reporting GFlop/s the same way the
// paper does (Table I's Flop column divided by factorization time), and
// (2) feeding the simulated-platform cost models.  Counts follow the usual
// LAPACK conventions and count *operations in the working precision*, i.e.
// a complex multiply-add counts as one multiply + one add, exactly like the
// paper's per-matrix Flop column (which is why Z matrices show lower
// "GFlop/s" on the same hardware).
#pragma once

#include "common/types.hpp"

namespace spx {

/// C(MxN) -= A(MxK) * B(KxN)^T : 2*M*N*K ops.
inline double flops_gemm(double m, double n, double k) {
  return 2.0 * m * n * k;
}

/// Triangular solve with M RHS columns against an NxN triangle.
inline double flops_trsm(double n, double m) { return m * n * n; }

/// Cholesky of an NxN block: n^3/3 + n^2/2 + n/6.
inline double flops_potrf(double n) {
  return n * n * n / 3.0 + n * n / 2.0 + n / 6.0;
}

/// LDL^T of an NxN block: ~n^3/3.
inline double flops_ldlt(double n) {
  return n * n * n / 3.0 + n * n;
}

/// LU (no pivoting) of an NxN block: 2n^3/3 - n^2/2.
inline double flops_getrf(double n) {
  return 2.0 * n * n * n / 3.0 + n * n / 2.0;
}

/// Column-scaling used by the LDL^T update (W = L * D): one multiply per
/// entry.
inline double flops_scale(double m, double n) { return m * n; }

}  // namespace spx
