// Tiny command-line option parser shared by the examples and benches.
//
// Supports `--name value`, `--name=value` and boolean `--flag` forms.
// Unknown options raise InvalidArgument so typos in bench scripts fail loud.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace spx {

class Cli {
 public:
  Cli(int argc, char** argv);

  /// Declares an option with a default; returns the parsed value.
  std::string get(const std::string& name, const std::string& def);
  long get_int(const std::string& name, long def);
  double get_double(const std::string& name, double def);
  bool get_flag(const std::string& name);

  /// Call after all get() calls: throws on options that were passed but
  /// never declared.
  void check_unknown() const;

  const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> values_;
  mutable std::map<std::string, bool> seen_;
};

}  // namespace spx
