#include "common/log.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace spx {
namespace {

LogLevel initial_level() {
  const char* env = std::getenv("SPX_LOG_LEVEL");
  if (env == nullptr) return LogLevel::Warn;
  if (std::strcmp(env, "error") == 0) return LogLevel::Error;
  if (std::strcmp(env, "warn") == 0) return LogLevel::Warn;
  if (std::strcmp(env, "info") == 0) return LogLevel::Info;
  if (std::strcmp(env, "debug") == 0) return LogLevel::Debug;
  return LogLevel::Warn;
}

std::atomic<LogLevel>& level_slot() {
  static std::atomic<LogLevel> level{initial_level()};
  return level;
}

const char* tag(LogLevel level) {
  switch (level) {
    case LogLevel::Error:
      return "ERROR";
    case LogLevel::Warn:
      return "WARN";
    case LogLevel::Info:
      return "INFO";
    case LogLevel::Debug:
      return "DEBUG";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) { level_slot().store(level); }

LogLevel log_level() { return level_slot().load(); }

void logf(LogLevel level, const char* fmt, ...) {
  if (static_cast<int>(level) > static_cast<int>(log_level())) return;
  std::va_list args;
  va_start(args, fmt);
  std::fprintf(stderr, "[spx %s] ", tag(level));
  std::vfprintf(stderr, fmt, args);
  std::fprintf(stderr, "\n");
  va_end(args);
}

}  // namespace spx
