#include "common/cli.hpp"

#include <cstdlib>

#include "common/error.hpp"

namespace spx {

Cli::Cli(int argc, char** argv) {
  program_ = argc > 0 ? argv[0] : "";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    SPX_CHECK_ARG(arg.rfind("--", 0) == 0, "options must start with --: " + arg);
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "1";  // boolean flag
    }
  }
}

std::string Cli::get(const std::string& name, const std::string& def) {
  seen_[name] = true;
  const auto it = values_.find(name);
  return it == values_.end() ? def : it->second;
}

long Cli::get_int(const std::string& name, long def) {
  const std::string v = get(name, std::to_string(def));
  return std::strtol(v.c_str(), nullptr, 10);
}

double Cli::get_double(const std::string& name, double def) {
  const std::string v = get(name, std::to_string(def));
  return std::strtod(v.c_str(), nullptr);
}

bool Cli::get_flag(const std::string& name) {
  return get(name, "0") != "0";
}

void Cli::check_unknown() const {
  for (const auto& [name, value] : values_) {
    (void)value;
    if (seen_.find(name) == seen_.end()) {
      throw InvalidArgument("unknown option --" + name);
    }
  }
}

}  // namespace spx
