#include "common/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace spx::json {
namespace {

[[noreturn]] void fail_at(std::size_t pos, const std::string& what) {
  throw InvalidArgument("json parse error at byte " + std::to_string(pos) +
                        ": " + what);
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value parse_document() {
    Value v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail_at(pos_, "trailing characters");
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail_at(pos_, "unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      fail_at(pos_, std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Value parse_value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') return Value(parse_string());
    if (c == 't') {
      if (!consume_literal("true")) fail_at(pos_, "bad literal");
      return Value(true);
    }
    if (c == 'f') {
      if (!consume_literal("false")) fail_at(pos_, "bad literal");
      return Value(false);
    }
    if (c == 'n') {
      if (!consume_literal("null")) fail_at(pos_, "bad literal");
      return Value();
    }
    return parse_number();
  }

  Value parse_object() {
    expect('{');
    Value v = Value::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.set(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  Value parse_array() {
    expect('[');
    Value v = Value::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      const char c = peek();
      ++pos_;
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      const char esc = peek();
      ++pos_;
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail_at(pos_, "truncated \\u escape");
          const std::string hex(text_.substr(pos_, 4));
          char* end = nullptr;
          const long code = std::strtol(hex.c_str(), &end, 16);
          if (end != hex.c_str() + 4 || code > 0x7f) {
            fail_at(pos_, "unsupported \\u escape (ASCII only)");
          }
          out.push_back(static_cast<char>(code));
          pos_ += 4;
          break;
        }
        default:
          fail_at(pos_ - 1, "bad escape");
      }
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '-' || c == '+' || c == '.' ||
          c == 'e' || c == 'E') {
        ++pos_;
      } else {
        break;
      }
    }
    const std::string num(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double d = std::strtod(num.c_str(), &end);
    if (num.empty() || end != num.c_str() + num.size()) {
      fail_at(start, "bad number");
    }
    return Value(d);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

void dump_string(std::string& out, const std::string& s) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void dump_number(std::string& out, double d) {
  if (!std::isfinite(d)) {
    // JSON has no inf/nan; model files never contain them by construction.
    out += "0";
    return;
  }
  char buf[40];
  if (d == static_cast<double>(static_cast<long long>(d)) &&
      std::fabs(d) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(d));
  } else {
    std::snprintf(buf, sizeof(buf), "%.17g", d);
  }
  out += buf;
}

void indent(std::string& out, int depth) {
  out.append(static_cast<std::size_t>(depth) * 2, ' ');
}

}  // namespace

Value Value::array() {
  Value v;
  v.kind_ = Kind::Array;
  return v;
}

Value Value::object() {
  Value v;
  v.kind_ = Kind::Object;
  return v;
}

bool Value::as_bool() const {
  SPX_CHECK_ARG(kind_ == Kind::Bool, "json: not a bool");
  return bool_;
}

double Value::as_number() const {
  SPX_CHECK_ARG(kind_ == Kind::Number, "json: not a number");
  return num_;
}

const std::string& Value::as_string() const {
  SPX_CHECK_ARG(kind_ == Kind::String, "json: not a string");
  return str_;
}

std::size_t Value::size() const {
  SPX_CHECK_ARG(kind_ == Kind::Array, "json: not an array");
  return arr_.size();
}

const Value& Value::at(std::size_t i) const {
  SPX_CHECK_ARG(kind_ == Kind::Array, "json: not an array");
  SPX_CHECK_ARG(i < arr_.size(), "json: array index out of range");
  return arr_[i];
}

void Value::push_back(Value v) {
  SPX_CHECK_ARG(kind_ == Kind::Array, "json: not an array");
  arr_.push_back(std::move(v));
}

const Value* Value::find(std::string_view key) const {
  SPX_CHECK_ARG(kind_ == Kind::Object, "json: not an object");
  for (const auto& [k, v] : obj_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const Value& Value::at(std::string_view key) const {
  const Value* v = find(key);
  SPX_CHECK_ARG(v != nullptr, "json: missing key '" + std::string(key) + "'");
  return *v;
}

void Value::set(std::string key, Value v) {
  SPX_CHECK_ARG(kind_ == Kind::Object, "json: not an object");
  for (auto& [k, old] : obj_) {
    if (k == key) {
      old = std::move(v);
      return;
    }
  }
  obj_.emplace_back(std::move(key), std::move(v));
}

const std::vector<std::pair<std::string, Value>>& Value::members() const {
  SPX_CHECK_ARG(kind_ == Kind::Object, "json: not an object");
  return obj_;
}

double Value::number_or(std::string_view key, double def) const {
  const Value* v = find(key);
  return v != nullptr && v->kind_ == Kind::Number ? v->num_ : def;
}

std::string Value::string_or(std::string_view key, std::string def) const {
  const Value* v = find(key);
  return v != nullptr && v->kind_ == Kind::String ? v->str_ : def;
}

void Value::dump_to(std::string& out, int depth) const {
  switch (kind_) {
    case Kind::Null:
      out += "null";
      return;
    case Kind::Bool:
      out += bool_ ? "true" : "false";
      return;
    case Kind::Number:
      dump_number(out, num_);
      return;
    case Kind::String:
      dump_string(out, str_);
      return;
    case Kind::Array: {
      if (arr_.empty()) {
        out += "[]";
        return;
      }
      out += "[\n";
      for (std::size_t i = 0; i < arr_.size(); ++i) {
        indent(out, depth + 1);
        arr_[i].dump_to(out, depth + 1);
        if (i + 1 < arr_.size()) out += ",";
        out += "\n";
      }
      indent(out, depth);
      out += "]";
      return;
    }
    case Kind::Object: {
      if (obj_.empty()) {
        out += "{}";
        return;
      }
      out += "{\n";
      for (std::size_t i = 0; i < obj_.size(); ++i) {
        indent(out, depth + 1);
        dump_string(out, obj_[i].first);
        out += ": ";
        obj_[i].second.dump_to(out, depth + 1);
        if (i + 1 < obj_.size()) out += ",";
        out += "\n";
      }
      indent(out, depth);
      out += "}";
      return;
    }
  }
}

std::string Value::dump() const {
  std::string out;
  dump_to(out, 0);
  out += "\n";
  return out;
}

Value Value::parse(std::string_view text) {
  return Parser(text).parse_document();
}

}  // namespace spx::json
