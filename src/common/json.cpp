#include "common/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace spx::json {
namespace {

[[noreturn]] void fail_at(std::size_t pos, const std::string& what) {
  throw InvalidArgument("json parse error at byte " + std::to_string(pos) +
                        ": " + what);
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value parse_document() {
    Value v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail_at(pos_, "trailing characters");
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail_at(pos_, "unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      fail_at(pos_, std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Value parse_value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') return Value(parse_string());
    if (c == 't') {
      if (!consume_literal("true")) fail_at(pos_, "bad literal");
      return Value(true);
    }
    if (c == 'f') {
      if (!consume_literal("false")) fail_at(pos_, "bad literal");
      return Value(false);
    }
    if (c == 'n') {
      if (!consume_literal("null")) fail_at(pos_, "bad literal");
      return Value();
    }
    return parse_number();
  }

  Value parse_object() {
    expect('{');
    Value v = Value::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.set(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  Value parse_array() {
    expect('[');
    Value v = Value::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  /// Reads the 4 hex digits of a \uXXXX escape (cursor past the 'u').
  unsigned long parse_hex4() {
    if (pos_ + 4 > text_.size()) fail_at(pos_, "truncated \\u escape");
    unsigned long code = 0;
    for (int k = 0; k < 4; ++k) {
      const char h = text_[pos_ + k];
      code <<= 4;
      if (h >= '0' && h <= '9') {
        code |= static_cast<unsigned long>(h - '0');
      } else if (h >= 'a' && h <= 'f') {
        code |= static_cast<unsigned long>(h - 'a' + 10);
      } else if (h >= 'A' && h <= 'F') {
        code |= static_cast<unsigned long>(h - 'A' + 10);
      } else {
        fail_at(pos_ + k, "bad hex digit in \\u escape");
      }
    }
    pos_ += 4;
    return code;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      const char c = peek();
      ++pos_;
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      const char esc = peek();
      ++pos_;
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          unsigned long code = parse_hex4();
          if (code >= 0xdc00 && code <= 0xdfff) {
            fail_at(pos_ - 4, "lone low surrogate in \\u escape");
          }
          if (code >= 0xd800 && code <= 0xdbff) {
            // High surrogate: a \uDC00-\uDFFF low half must follow.
            if (pos_ + 2 > text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u') {
              fail_at(pos_, "high surrogate not followed by \\u escape");
            }
            pos_ += 2;
            const unsigned long low = parse_hex4();
            if (low < 0xdc00 || low > 0xdfff) {
              fail_at(pos_ - 4, "high surrogate not followed by low half");
            }
            code = 0x10000 + ((code - 0xd800) << 10) + (low - 0xdc00);
          }
          append_utf8(out, code);
          break;
        }
        default:
          fail_at(pos_ - 1, "bad escape");
      }
    }
  }

  static void append_utf8(std::string& out, unsigned long cp) {
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(static_cast<char>(0xc0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3f)));
    } else if (cp < 0x10000) {
      out.push_back(static_cast<char>(0xe0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3f)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3f)));
    } else {
      out.push_back(static_cast<char>(0xf0 | (cp >> 18)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3f)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3f)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3f)));
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '-' || c == '+' || c == '.' ||
          c == 'e' || c == 'E') {
        ++pos_;
      } else {
        break;
      }
    }
    const std::string num(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double d = std::strtod(num.c_str(), &end);
    if (num.empty() || end != num.c_str() + num.size()) {
      fail_at(start, "bad number");
    }
    return Value(d);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

void append_escape(std::string& out, unsigned long cp) {
  char buf[16];
  if (cp < 0x10000) {
    std::snprintf(buf, sizeof(buf), "\\u%04lx", cp);
  } else {
    // Outside the BMP: UTF-16 surrogate pair, as RFC 8259 requires.
    const unsigned long v = cp - 0x10000;
    std::snprintf(buf, sizeof(buf), "\\u%04lx\\u%04lx", 0xd800 + (v >> 10),
                  0xdc00 + (v & 0x3ff));
  }
  out += buf;
}

/// Decodes one UTF-8 sequence starting at s[i]; returns the codepoint and
/// advances i, or returns 0xfffd (and advances by one byte) on malformed
/// input so arbitrary bytes still serialize to valid JSON.
unsigned long decode_utf8(const std::string& s, std::size_t& i) {
  const auto byte = [&](std::size_t k) {
    return static_cast<unsigned long>(static_cast<unsigned char>(s[k]));
  };
  const unsigned long c0 = byte(i);
  int len = 0;
  unsigned long cp = 0;
  if (c0 >= 0xc2 && c0 <= 0xdf) {
    len = 2;
    cp = c0 & 0x1f;
  } else if (c0 >= 0xe0 && c0 <= 0xef) {
    len = 3;
    cp = c0 & 0x0f;
  } else if (c0 >= 0xf0 && c0 <= 0xf4) {
    len = 4;
    cp = c0 & 0x07;
  } else {  // lone continuation byte, overlong lead, or > U+10FFFF lead
    ++i;
    return 0xfffd;
  }
  if (i + static_cast<std::size_t>(len) > s.size()) {
    ++i;
    return 0xfffd;
  }
  for (int k = 1; k < len; ++k) {
    const unsigned long ck = byte(i + static_cast<std::size_t>(k));
    if (ck < 0x80 || ck > 0xbf) {
      ++i;
      return 0xfffd;
    }
    cp = (cp << 6) | (ck & 0x3f);
  }
  const bool overlong = (len == 2 && cp < 0x80) || (len == 3 && cp < 0x800) ||
                        (len == 4 && cp < 0x10000);
  if (overlong || cp > 0x10ffff || (cp >= 0xd800 && cp <= 0xdfff)) {
    ++i;
    return 0xfffd;
  }
  i += static_cast<std::size_t>(len);
  return cp;
}

void dump_string(std::string& out, const std::string& s) {
  out.push_back('"');
  for (std::size_t i = 0; i < s.size();) {
    const char c = s[i];
    switch (c) {
      case '"': out += "\\\""; ++i; continue;
      case '\\': out += "\\\\"; ++i; continue;
      case '\n': out += "\\n"; ++i; continue;
      case '\r': out += "\\r"; ++i; continue;
      case '\t': out += "\\t"; ++i; continue;
      default: break;
    }
    const auto u = static_cast<unsigned char>(c);
    if (u < 0x20) {  // remaining control characters
      append_escape(out, u);
      ++i;
    } else if (u < 0x80) {  // printable ASCII passes through
      out.push_back(c);
      ++i;
    } else {  // non-ASCII: decode UTF-8 and emit \uXXXX escapes
      append_escape(out, decode_utf8(s, i));
    }
  }
  out.push_back('"');
}

void dump_number(std::string& out, double d) {
  if (!std::isfinite(d)) {
    // JSON has no inf/nan; model files never contain them by construction.
    out += "0";
    return;
  }
  char buf[40];
  if (d == static_cast<double>(static_cast<long long>(d)) &&
      std::fabs(d) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(d));
  } else {
    std::snprintf(buf, sizeof(buf), "%.17g", d);
  }
  out += buf;
}

void indent(std::string& out, int depth) {
  out.append(static_cast<std::size_t>(depth) * 2, ' ');
}

}  // namespace

Value Value::array() {
  Value v;
  v.kind_ = Kind::Array;
  return v;
}

Value Value::object() {
  Value v;
  v.kind_ = Kind::Object;
  return v;
}

bool Value::as_bool() const {
  SPX_CHECK_ARG(kind_ == Kind::Bool, "json: not a bool");
  return bool_;
}

double Value::as_number() const {
  SPX_CHECK_ARG(kind_ == Kind::Number, "json: not a number");
  return num_;
}

const std::string& Value::as_string() const {
  SPX_CHECK_ARG(kind_ == Kind::String, "json: not a string");
  return str_;
}

std::size_t Value::size() const {
  SPX_CHECK_ARG(kind_ == Kind::Array, "json: not an array");
  return arr_.size();
}

const Value& Value::at(std::size_t i) const {
  SPX_CHECK_ARG(kind_ == Kind::Array, "json: not an array");
  SPX_CHECK_ARG(i < arr_.size(), "json: array index out of range");
  return arr_[i];
}

void Value::push_back(Value v) {
  SPX_CHECK_ARG(kind_ == Kind::Array, "json: not an array");
  arr_.push_back(std::move(v));
}

const Value* Value::find(std::string_view key) const {
  SPX_CHECK_ARG(kind_ == Kind::Object, "json: not an object");
  for (const auto& [k, v] : obj_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const Value& Value::at(std::string_view key) const {
  const Value* v = find(key);
  SPX_CHECK_ARG(v != nullptr, "json: missing key '" + std::string(key) + "'");
  return *v;
}

void Value::set(std::string key, Value v) {
  SPX_CHECK_ARG(kind_ == Kind::Object, "json: not an object");
  for (auto& [k, old] : obj_) {
    if (k == key) {
      old = std::move(v);
      return;
    }
  }
  obj_.emplace_back(std::move(key), std::move(v));
}

const std::vector<std::pair<std::string, Value>>& Value::members() const {
  SPX_CHECK_ARG(kind_ == Kind::Object, "json: not an object");
  return obj_;
}

double Value::number_or(std::string_view key, double def) const {
  const Value* v = find(key);
  return v != nullptr && v->kind_ == Kind::Number ? v->num_ : def;
}

std::string Value::string_or(std::string_view key, std::string def) const {
  const Value* v = find(key);
  return v != nullptr && v->kind_ == Kind::String ? v->str_ : def;
}

void Value::dump_to(std::string& out, int depth) const {
  switch (kind_) {
    case Kind::Null:
      out += "null";
      return;
    case Kind::Bool:
      out += bool_ ? "true" : "false";
      return;
    case Kind::Number:
      dump_number(out, num_);
      return;
    case Kind::String:
      dump_string(out, str_);
      return;
    case Kind::Array: {
      if (arr_.empty()) {
        out += "[]";
        return;
      }
      out += "[\n";
      for (std::size_t i = 0; i < arr_.size(); ++i) {
        indent(out, depth + 1);
        arr_[i].dump_to(out, depth + 1);
        if (i + 1 < arr_.size()) out += ",";
        out += "\n";
      }
      indent(out, depth);
      out += "]";
      return;
    }
    case Kind::Object: {
      if (obj_.empty()) {
        out += "{}";
        return;
      }
      out += "{\n";
      for (std::size_t i = 0; i < obj_.size(); ++i) {
        indent(out, depth + 1);
        dump_string(out, obj_[i].first);
        out += ": ";
        obj_[i].second.dump_to(out, depth + 1);
        if (i + 1 < obj_.size()) out += ",";
        out += "\n";
      }
      indent(out, depth);
      out += "}";
      return;
    }
  }
}

std::string Value::dump() const {
  std::string out;
  dump_to(out, 0);
  out += "\n";
  return out;
}

Value Value::parse(std::string_view text) {
  return Parser(text).parse_document();
}

}  // namespace spx::json
