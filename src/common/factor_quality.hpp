// Numerical quality accounting of one factorization under static-pivot
// perturbation (PaStiX-style, paper §III): the task DAG is fixed at
// analysis time, so a troublesome pivot cannot be repaired by
// re-pivoting.  Instead a pivot with |d| < eps * ||A|| is replaced by
// +/- eps * ||A|| (sign preserving) and the damage is accounted for
// here, to be repaired by iterative refinement at solve time.
//
// Kernels fill a thread-local FactorQuality per panel; FactorData merges
// them under a mutex; the Solver copies the merged record into
// RunStats::quality where it reaches the JSON stats surface.
#pragma once

#include <limits>
#include <vector>

#include "common/types.hpp"
#include "obs/export.hpp"

namespace spx {

struct FactorQuality : obs::Exportable {
  /// Columns whose perturbed location is recorded verbatim; beyond this
  /// only the count grows (keeps the record O(1) for mass breakdowns).
  static constexpr std::size_t kMaxRecordedColumns = 64;

  index_t perturbed_pivots = 0;    ///< pivots replaced by +/- threshold
  std::vector<index_t> perturbed_columns;  ///< global columns, capped
  double min_pivot = std::numeric_limits<double>::infinity();
  double max_pivot = 0.0;          ///< |pivot| extrema after perturbation
  double anorm = 0.0;              ///< max |A_ij| estimate the threshold used
  double threshold = 0.0;          ///< absolute perturbation value eps*||A||
  bool indefinite = false;         ///< LL^T met a pivot < -threshold

  /// True when any pivot was perturbed: the factors are those of A + E
  /// with ||E|| <= threshold * perturbed_pivots, and solves should refine.
  bool degraded() const { return perturbed_pivots > 0; }

  /// Pivot growth |d|_max / ||A||: how far the factorization wandered
  /// from the input's scale (large growth costs refinement accuracy).
  double pivot_growth() const { return anorm > 0 ? max_pivot / anorm : 0.0; }

  /// Records one accepted pivot of magnitude `mag` at global column
  /// `col`; `perturbed` marks it as replaced by the threshold.
  void note_pivot(double mag, index_t col, bool perturbed) {
    if (mag < min_pivot) min_pivot = mag;
    if (mag > max_pivot) max_pivot = mag;
    if (perturbed) {
      ++perturbed_pivots;
      if (perturbed_columns.size() < kMaxRecordedColumns) {
        perturbed_columns.push_back(col);
      }
    }
  }

  /// Merges another panel's record into this one (order-insensitive up
  /// to the recorded-column cap).
  void merge(const FactorQuality& o) {
    perturbed_pivots += o.perturbed_pivots;
    for (const index_t c : o.perturbed_columns) {
      if (perturbed_columns.size() >= kMaxRecordedColumns) break;
      perturbed_columns.push_back(c);
    }
    if (o.min_pivot < min_pivot) min_pivot = o.min_pivot;
    if (o.max_pivot > max_pivot) max_pivot = o.max_pivot;
    indefinite = indefinite || o.indefinite;
  }

  /// JSON schema: the degraded flag, perturbation count/locations, pivot
  /// growth and the norm/threshold pair (stable keys; see the JsonSchema
  /// golden-key test).
  void export_json(obs::JsonWriter& w) const override;
};

/// Compatibility shim over the obs::Exportable path (same keys).
json::Value to_json(const FactorQuality& q);

}  // namespace spx
