// Wall-clock timing helpers.
#pragma once

#include <chrono>

namespace spx {

/// Monotonic wall-clock timer with seconds resolution as double.
class Timer {
 public:
  Timer() : start_(clock::now()) {}

  /// Seconds elapsed since construction or the last reset().
  double elapsed() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  void reset() { start_ = clock::now(); }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace spx
