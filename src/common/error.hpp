// Error handling utilities for the spx library.
//
// We favour exceptions for unrecoverable misuse (bad arguments, inconsistent
// structures) and SPX_ASSERT for internal invariants.  Hot kernels use
// SPX_DEBUG_ASSERT which compiles away in release builds.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace spx {

/// Exception thrown on invalid user input (bad matrix, bad options, ...).
class InvalidArgument : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Exception thrown when a numerical factorization breaks down
/// (non-positive pivot in Cholesky, zero pivot in static-pivoting LU, ...).
class NumericalError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Exception thrown on internal inconsistency (a bug in spx itself).
class InternalError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line) {
  std::fprintf(stderr, "spx assertion failed: %s at %s:%d\n", expr, file,
               line);
  std::abort();
}

}  // namespace spx

#define SPX_ASSERT(expr) \
  ((expr) ? (void)0 : ::spx::assert_fail(#expr, __FILE__, __LINE__))

#ifndef NDEBUG
#define SPX_DEBUG_ASSERT(expr) SPX_ASSERT(expr)
#else
#define SPX_DEBUG_ASSERT(expr) ((void)0)
#endif

#define SPX_CHECK_ARG(expr, msg) \
  ((expr) ? (void)0 : throw ::spx::InvalidArgument(msg))
