// Minimal JSON value, parser and writer.
//
// Just enough JSON for the library's structured artifacts (the perfmodel
// files under models/, see docs/PERF_MODELS.md, and the solve-service
// stats surface): objects keep insertion order, numbers are doubles
// serialized with %.17g so they round-trip bit-exactly, and the parser
// rejects trailing garbage.  Strings are UTF-8: the writer escapes
// control and non-ASCII characters as \uXXXX (surrogate pairs above the
// BMP, U+FFFD for malformed bytes) so output is always valid ASCII JSON
// -- arbitrary tenant names included -- and the parser accepts the full
// \uXXXX range back.  Still not a general-purpose JSON library: no
// comments, inputs are trusted local files.
#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/error.hpp"

namespace spx::json {

/// A parsed JSON value.  Accessors throw InvalidArgument on kind
/// mismatches so schema violations in model files fail loud, not with
/// default-constructed garbage.
class Value {
 public:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Value() = default;
  explicit Value(bool b) : kind_(Kind::Bool), bool_(b) {}
  explicit Value(double d) : kind_(Kind::Number), num_(d) {}
  explicit Value(std::string s) : kind_(Kind::String), str_(std::move(s)) {}

  /// Named constructors for the container kinds.
  static Value array();
  static Value object();

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::Null; }
  bool is_object() const { return kind_ == Kind::Object; }
  bool is_array() const { return kind_ == Kind::Array; }

  /// Scalar accessors; throw InvalidArgument when the kind differs.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;

  /// Array access: element count and index (throws when not an array).
  std::size_t size() const;
  const Value& at(std::size_t i) const;
  void push_back(Value v);

  /// Object access: `find` returns null when absent, `at` throws.
  const Value* find(std::string_view key) const;
  const Value& at(std::string_view key) const;
  void set(std::string key, Value v);
  const std::vector<std::pair<std::string, Value>>& members() const;

  /// Convenience typed getters with defaults (object kind only).
  double number_or(std::string_view key, double def) const;
  std::string string_or(std::string_view key, std::string def) const;

  /// Serializes with 2-space indentation (stable, diff-friendly).
  std::string dump() const;

  /// Parses `text`, requiring it to be a single complete JSON document.
  /// Throws InvalidArgument with a byte offset on malformed input.
  static Value parse(std::string_view text);

 private:
  void dump_to(std::string& out, int depth) const;

  Kind kind_ = Kind::Null;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::vector<Value> arr_;
  std::vector<std::pair<std::string, Value>> obj_;
};

}  // namespace spx::json
