#include "common/factor_quality.hpp"

namespace spx {

void FactorQuality::export_json(obs::JsonWriter& w) const {
  w.field("degraded", degraded())
      .field("perturbed_pivots", perturbed_pivots)
      .number_array("perturbed_columns", perturbed_columns)
      .field("pivot_growth", pivot_growth())
      .field("anorm", anorm)
      .field("threshold", threshold)
      .field("indefinite", indefinite);
}

json::Value to_json(const FactorQuality& q) { return obs::to_json(q); }

}  // namespace spx
