#include "common/factor_quality.hpp"

#include "common/json.hpp"

namespace spx {

json::Value to_json(const FactorQuality& q) {
  json::Value v = json::Value::object();
  v.set("degraded", json::Value(q.degraded()));
  v.set("perturbed_pivots",
        json::Value(static_cast<double>(q.perturbed_pivots)));
  json::Value cols = json::Value::array();
  for (const index_t c : q.perturbed_columns) {
    cols.push_back(json::Value(static_cast<double>(c)));
  }
  v.set("perturbed_columns", std::move(cols));
  v.set("pivot_growth", json::Value(q.pivot_growth()));
  v.set("anorm", json::Value(q.anorm));
  v.set("threshold", json::Value(q.threshold));
  v.set("indefinite", json::Value(q.indefinite));
  return v;
}

}  // namespace spx
