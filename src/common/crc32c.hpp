// CRC32C (Castagnoli, polynomial 0x1EDC6F41, reflected 0x82F63B78):
// the checksum guarding both the SPXW wire protocol's optional frame
// trailer and the on-disk factor snapshots.  Software table-driven
// implementation -- fast enough for both uses (frames are small, the
// snapshot writer is async and rate-limited) and byte-identical on
// every host, which the cross-process wire/restore paths require.
#pragma once

#include <cstddef>
#include <cstdint>

namespace spx {

/// Incremental update: feed `crc32c(prev, p, n)` the running value to
/// extend a checksum across scattered buffers.  Start from 0.
std::uint32_t crc32c(std::uint32_t crc, const void* data, std::size_t len);

/// One-shot convenience over a single buffer.
inline std::uint32_t crc32c(const void* data, std::size_t len) {
  return crc32c(0, data, len);
}

}  // namespace spx
