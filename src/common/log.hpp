// Minimal leveled logging to stderr, controlled by SPX_LOG_LEVEL env var or
// spx::set_log_level().  Library code logs sparingly; the drivers log task
// traces at Debug level which the runtime tests consume.
#pragma once

#include <cstdarg>

namespace spx {

enum class LogLevel { Error = 0, Warn = 1, Info = 2, Debug = 3 };

void set_log_level(LogLevel level);
LogLevel log_level();

/// printf-style logging; drops the message when `level` is above the
/// configured verbosity.
void logf(LogLevel level, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

}  // namespace spx
