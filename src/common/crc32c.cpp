#include "common/crc32c.hpp"

#include <array>

namespace spx {

namespace {

// Reflected Castagnoli table, generated once at static-init time (256
// entries, trivially cheap; avoids a 1 KiB blob in the source).
std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> t{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? (0x82F63B78u ^ (c >> 1)) : (c >> 1);
    }
    t[i] = c;
  }
  return t;
}

const std::array<std::uint32_t, 256>& table() {
  static const std::array<std::uint32_t, 256> t = make_table();
  return t;
}

}  // namespace

std::uint32_t crc32c(std::uint32_t crc, const void* data, std::size_t len) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  const auto& t = table();
  crc = ~crc;
  for (std::size_t i = 0; i < len; ++i) {
    crc = t[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace spx
