#include "mat/csc.hpp"

namespace spx {

template class CscMatrix<real_t>;
template class CscMatrix<complex_t>;
template class CscMatrix<real32_t>;

}  // namespace spx
