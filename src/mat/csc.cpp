#include "mat/csc.hpp"

namespace spx {
namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

inline void mix(std::uint64_t& h, std::uint64_t word) {
  // FNV-1a over the 8 bytes of `word`.
  for (int k = 0; k < 8; ++k) {
    h = (h ^ (word & 0xff)) * kFnvPrime;
    word >>= 8;
  }
}

}  // namespace

std::uint64_t pattern_digest(index_t nrows, index_t ncols,
                             std::span<const size_type> colptr,
                             std::span<const index_t> rowind) {
  std::uint64_t h = kFnvOffset;
  mix(h, static_cast<std::uint64_t>(nrows));
  mix(h, static_cast<std::uint64_t>(ncols));
  for (const size_type p : colptr) mix(h, static_cast<std::uint64_t>(p));
  for (const index_t r : rowind) mix(h, static_cast<std::uint64_t>(r));
  return h;
}

template class CscMatrix<real_t>;
template class CscMatrix<complex_t>;
template class CscMatrix<real32_t>;

}  // namespace spx
