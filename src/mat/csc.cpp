#include "mat/csc.hpp"

namespace spx {
namespace {

constexpr std::uint64_t kFnvOffset = 14695981039346656037ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

inline void mix(std::uint64_t& h, std::uint64_t word) {
  // FNV-1a over the 8 bytes of `word`.
  for (int k = 0; k < 8; ++k) {
    h = (h ^ (word & 0xff)) * kFnvPrime;
    word >>= 8;
  }
}

}  // namespace

std::uint64_t fnv1a64(const void* data, std::size_t size,
                      std::uint64_t seed) {
  std::uint64_t h = seed;
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    h = (h ^ bytes[i]) * kFnvPrime;
  }
  return h;
}

std::uint64_t pattern_digest(index_t nrows, index_t ncols,
                             std::span<const size_type> colptr,
                             std::span<const index_t> rowind) {
  std::uint64_t h = kFnvOffset;
  mix(h, kPatternDigestVersion);
  mix(h, static_cast<std::uint64_t>(nrows));
  mix(h, static_cast<std::uint64_t>(ncols));
  for (const size_type p : colptr) mix(h, static_cast<std::uint64_t>(p));
  for (const index_t r : rowind) mix(h, static_cast<std::uint64_t>(r));
  return h;
}

template class CscMatrix<real_t>;
template class CscMatrix<complex_t>;
template class CscMatrix<real32_t>;

}  // namespace spx
