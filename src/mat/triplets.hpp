// Coordinate-format assembly buffer: accumulate (i, j, v) entries in any
// order (duplicates sum, as in FEM assembly) and convert to CSC.
#pragma once

#include <vector>

#include "mat/csc.hpp"

namespace spx {

template <typename T>
class Triplets {
 public:
  Triplets(index_t nrows, index_t ncols) : nrows_(nrows), ncols_(ncols) {}

  void add(index_t i, index_t j, T v) {
    SPX_DEBUG_ASSERT(i >= 0 && i < nrows_ && j >= 0 && j < ncols_);
    rows_.push_back(i);
    cols_.push_back(j);
    vals_.push_back(v);
  }

  /// Adds both (i,j,v) and (j,i,v); the diagonal is added once.
  void add_sym(index_t i, index_t j, T v) {
    add(i, j, v);
    if (i != j) add(j, i, v);
  }

  index_t nrows() const { return nrows_; }
  index_t ncols() const { return ncols_; }
  size_type size() const { return static_cast<size_type>(rows_.size()); }

  /// Converts to CSC, summing duplicate entries.
  CscMatrix<T> to_csc() const;

 private:
  index_t nrows_;
  index_t ncols_;
  std::vector<index_t> rows_;
  std::vector<index_t> cols_;
  std::vector<T> vals_;
};

extern template class Triplets<real_t>;
extern template class Triplets<complex_t>;
extern template class Triplets<real32_t>;

}  // namespace spx
