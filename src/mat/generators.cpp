#include "mat/generators.hpp"

#include <algorithm>
#include <cmath>

#include "mat/triplets.hpp"

namespace spx::gen {
namespace {

index_t idx2(index_t nx, index_t x, index_t y) { return y * nx + x; }

index_t idx3(index_t nx, index_t ny, index_t x, index_t y, index_t z) {
  return (z * ny + y) * nx + x;
}

}  // namespace

CscMatrix<real_t> grid2d_laplacian(index_t nx, index_t ny) {
  SPX_CHECK_ARG(nx > 0 && ny > 0, "grid dims must be positive");
  const index_t n = nx * ny;
  Triplets<real_t> t(n, n);
  for (index_t y = 0; y < ny; ++y) {
    for (index_t x = 0; x < nx; ++x) {
      const index_t c = idx2(nx, x, y);
      t.add(c, c, 4.0);
      if (x + 1 < nx) t.add_sym(idx2(nx, x + 1, y), c, -1.0);
      if (y + 1 < ny) t.add_sym(idx2(nx, x, y + 1), c, -1.0);
    }
  }
  return t.to_csc();
}

CscMatrix<real_t> grid3d_laplacian(index_t nx, index_t ny, index_t nz) {
  SPX_CHECK_ARG(nx > 0 && ny > 0 && nz > 0, "grid dims must be positive");
  const index_t n = nx * ny * nz;
  Triplets<real_t> t(n, n);
  for (index_t z = 0; z < nz; ++z) {
    for (index_t y = 0; y < ny; ++y) {
      for (index_t x = 0; x < nx; ++x) {
        const index_t c = idx3(nx, ny, x, y, z);
        t.add(c, c, 6.0);
        if (x + 1 < nx) t.add_sym(idx3(nx, ny, x + 1, y, z), c, -1.0);
        if (y + 1 < ny) t.add_sym(idx3(nx, ny, x, y + 1, z), c, -1.0);
        if (z + 1 < nz) t.add_sym(idx3(nx, ny, x, y, z + 1), c, -1.0);
      }
    }
  }
  return t.to_csc();
}

CscMatrix<real_t> elasticity3d(index_t nx, index_t ny, index_t nz) {
  SPX_CHECK_ARG(nx > 0 && ny > 0 && nz > 0, "grid dims must be positive");
  const index_t nodes = nx * ny * nz;
  const index_t n = 3 * nodes;
  Triplets<real_t> t(n, n);
  // Vector Laplacian per displacement component plus a weak coupling term
  // between components of neighbouring nodes (mimics the (lambda+mu)
  // grad-div coupling of isotropic elasticity).  Diagonal block kept
  // strongly dominant so LL^T succeeds without pivoting, like real
  // stiffness matrices.
  const real_t couple = 0.25;
  for (index_t z = 0; z < nz; ++z) {
    for (index_t y = 0; y < ny; ++y) {
      for (index_t x = 0; x < nx; ++x) {
        const index_t node = idx3(nx, ny, x, y, z);
        for (int d = 0; d < 3; ++d) {
          const index_t c = 3 * node + d;
          t.add(c, c, 12.0);
          // Intra-node coupling between the three components.
          for (int e = d + 1; e < 3; ++e) {
            t.add_sym(3 * node + e, c, couple);
          }
        }
        const index_t nbrs[3] = {
            x + 1 < nx ? idx3(nx, ny, x + 1, y, z) : index_t(-1),
            y + 1 < ny ? idx3(nx, ny, x, y + 1, z) : index_t(-1),
            z + 1 < nz ? idx3(nx, ny, x, y, z + 1) : index_t(-1)};
        for (const index_t nb : nbrs) {
          if (nb < 0) continue;
          for (int d = 0; d < 3; ++d) {
            t.add_sym(3 * nb + d, 3 * node + d, -1.0);
            // Cross-component neighbour coupling.
            t.add_sym(3 * nb + (d + 1) % 3, 3 * node + d, -couple);
          }
        }
      }
    }
  }
  return t.to_csc();
}

CscMatrix<complex_t> helmholtz3d(index_t nx, index_t ny, index_t nz,
                                 double wavenumber) {
  SPX_CHECK_ARG(nx > 0 && ny > 0 && nz > 0, "grid dims must be positive");
  const index_t n = nx * ny * nz;
  Triplets<complex_t> t(n, n);
  // (−Δ − k² + i·damping) with a PML-like absorbing layer near the domain
  // boundary: the imaginary shift grows toward the boundary.  The matrix is
  // complex symmetric (equal to its plain transpose), the case the paper's
  // pmlDF matrix exercises with Z LDL^T.
  const index_t pml = std::max<index_t>(2, nx / 10);
  for (index_t z = 0; z < nz; ++z) {
    for (index_t y = 0; y < ny; ++y) {
      for (index_t x = 0; x < nx; ++x) {
        const index_t c = idx3(nx, ny, x, y, z);
        const index_t db = std::min(
            {x, y, z, nx - 1 - x, ny - 1 - y, nz - 1 - z});
        const double damping =
            db < pml ? 0.8 * double(pml - db) / double(pml) : 0.0;
        t.add(c, c, complex_t(6.0 - wavenumber * wavenumber, 2.0 + damping));
        if (x + 1 < nx) t.add_sym(idx3(nx, ny, x + 1, y, z), c, -1.0);
        if (y + 1 < ny) t.add_sym(idx3(nx, ny, x, y + 1, z), c, -1.0);
        if (z + 1 < nz) t.add_sym(idx3(nx, ny, x, y, z + 1), c, -1.0);
      }
    }
  }
  return t.to_csc();
}

CscMatrix<complex_t> filter3d(index_t nx, index_t ny, index_t nz) {
  SPX_CHECK_ARG(nx > 0 && ny > 0 && nz > 0, "grid dims must be positive");
  const index_t n = nx * ny * nz;
  Triplets<complex_t> t(n, n);
  // Helmholtz-like operator plus a skew (direction-dependent) term making
  // the matrix unsymmetric in values while structurally symmetric --
  // exactly what PASTIX's A+A^T analysis assumes.
  const complex_t skew(0.3, 0.1);
  for (index_t z = 0; z < nz; ++z) {
    for (index_t y = 0; y < ny; ++y) {
      for (index_t x = 0; x < nx; ++x) {
        const index_t c = idx3(nx, ny, x, y, z);
        t.add(c, c, complex_t(6.5, 1.5));
        if (x + 1 < nx) {
          const index_t r = idx3(nx, ny, x + 1, y, z);
          t.add(r, c, complex_t(-1.0) + skew);
          t.add(c, r, complex_t(-1.0) - skew);
        }
        if (y + 1 < ny) {
          const index_t r = idx3(nx, ny, x, y + 1, z);
          t.add(r, c, complex_t(-1.0) + skew);
          t.add(c, r, complex_t(-1.0) - skew);
        }
        if (z + 1 < nz) {
          const index_t r = idx3(nx, ny, x, y, z + 1);
          t.add(r, c, complex_t(-1.0) + skew);
          t.add(c, r, complex_t(-1.0) - skew);
        }
      }
    }
  }
  return t.to_csc();
}

CscMatrix<real_t> convection_diffusion3d(index_t nx, index_t ny, index_t nz,
                                         double peclet) {
  SPX_CHECK_ARG(nx > 0 && ny > 0 && nz > 0, "grid dims must be positive");
  const index_t n = nx * ny * nz;
  Triplets<real_t> t(n, n);
  // Central diffusion + upwinded convection along x: diag stays dominant,
  // so no-pivot LU is stable.
  const real_t h = 1.0 / double(nx + 1);
  const real_t conv = peclet * h;  // cell Peclet number
  for (index_t z = 0; z < nz; ++z) {
    for (index_t y = 0; y < ny; ++y) {
      for (index_t x = 0; x < nx; ++x) {
        const index_t c = idx3(nx, ny, x, y, z);
        t.add(c, c, 6.0 + conv);
        if (x + 1 < nx) {
          const index_t r = idx3(nx, ny, x + 1, y, z);
          t.add(r, c, -1.0 - conv);  // downstream
          t.add(c, r, -1.0);         // upstream
        }
        if (y + 1 < ny) t.add_sym(idx3(nx, ny, x, y + 1, z), c, -1.0);
        if (z + 1 < nz) t.add_sym(idx3(nx, ny, x, y, z + 1), c, -1.0);
      }
    }
  }
  return t.to_csc();
}

CscMatrix<real_t> random_spd(index_t n, double density, Rng& rng) {
  SPX_CHECK_ARG(n > 0 && density >= 0.0 && density <= 1.0, "bad args");
  Triplets<real_t> t(n, n);
  std::vector<real_t> rowsum(n, 0.0);
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = j + 1; i < n; ++i) {
      if (rng.next_double() < density) {
        const real_t v = rng.uniform(-1.0, 1.0);
        t.add_sym(i, j, v);
        rowsum[i] += std::abs(v);
        rowsum[j] += std::abs(v);
      }
    }
  }
  // Strict diagonal dominance => SPD.
  for (index_t j = 0; j < n; ++j) t.add(j, j, rowsum[j] + 1.0);
  return t.to_csc();
}

CscMatrix<real_t> random_sym_indefinite(index_t n, double density, Rng& rng) {
  SPX_CHECK_ARG(n > 0 && density >= 0.0 && density <= 1.0, "bad args");
  Triplets<real_t> t(n, n);
  std::vector<real_t> rowsum(n, 0.0);
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = j + 1; i < n; ++i) {
      if (rng.next_double() < density) {
        const real_t v = rng.uniform(-1.0, 1.0);
        t.add_sym(i, j, v);
        rowsum[i] += std::abs(v);
        rowsum[j] += std::abs(v);
      }
    }
  }
  // Diagonally dominant in magnitude but with alternating signs: the
  // matrix is symmetric indefinite while static-pivot LDL^T stays stable.
  for (index_t j = 0; j < n; ++j) {
    const real_t sign = (j % 2 == 0) ? 1.0 : -1.0;
    t.add(j, j, sign * (rowsum[j] + 1.0));
  }
  return t.to_csc();
}

CscMatrix<real_t> random_unsym(index_t n, double density, Rng& rng) {
  SPX_CHECK_ARG(n > 0 && density >= 0.0 && density <= 1.0, "bad args");
  Triplets<real_t> t(n, n);
  std::vector<real_t> rowsum(n, 0.0);
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = j + 1; i < n; ++i) {
      if (rng.next_double() < density) {
        // Structurally symmetric, different values on each side.
        const real_t a = rng.uniform(-1.0, 1.0);
        const real_t b = rng.uniform(-1.0, 1.0);
        t.add(i, j, a);
        t.add(j, i, b);
        rowsum[i] += std::abs(a);
        rowsum[j] += std::abs(b);
      }
    }
  }
  for (index_t j = 0; j < n; ++j) t.add(j, j, rowsum[j] + 1.0);
  return t.to_csc();
}

CscMatrix<real_t> rank_deficient(index_t n, index_t k) {
  SPX_CHECK_ARG(k > 0 && n >= 2 * k,
                "rank_deficient: need k >= 1 segments of length >= 2");
  Triplets<real_t> t(n, n);
  // k disconnected path segments, each a pure Neumann 1D Laplacian:
  // diag = vertex degree, so every segment annihilates its constant
  // vector and the whole matrix has rank exactly n - k.
  const index_t base = n / k;
  index_t begin = 0;
  for (index_t s = 0; s < k; ++s) {
    const index_t len = s + 1 < k ? base : n - begin;
    for (index_t i = 0; i < len; ++i) {
      const index_t c = begin + i;
      const real_t degree = (i == 0 || i + 1 == len) ? 1.0 : 2.0;
      t.add(c, c, degree);
      if (i + 1 < len) t.add_sym(c + 1, c, -1.0);
    }
    begin += len;
  }
  return t.to_csc();
}

CscMatrix<real_t> tiny_pivot(index_t n, double eps) {
  SPX_CHECK_ARG(n >= 4, "tiny_pivot: need n >= 4");
  Triplets<real_t> t(n, n);
  // Well-conditioned bulk: a diagonally dominant path on columns
  // [0, n-2); the last two columns form a decoupled [[eps, 1], [1, eps]]
  // block whose leading pivot is exactly eps wherever the ordering puts
  // it (both diagonals are eps and the block touches nothing else).
  const index_t m = n - 2;
  for (index_t i = 0; i < m; ++i) {
    t.add(i, i, 4.0);
    if (i + 1 < m) t.add_sym(i + 1, i, -1.0);
  }
  t.add(m, m, eps);
  t.add(m + 1, m + 1, eps);
  t.add_sym(m + 1, m, 1.0);
  return t.to_csc();
}

CscMatrix<complex_t> random_complex_sym(index_t n, double density, Rng& rng) {
  SPX_CHECK_ARG(n > 0 && density >= 0.0 && density <= 1.0, "bad args");
  Triplets<complex_t> t(n, n);
  std::vector<real_t> rowsum(n, 0.0);
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = j + 1; i < n; ++i) {
      if (rng.next_double() < density) {
        const complex_t v = rng.scalar<complex_t>();
        t.add_sym(i, j, v);
        rowsum[i] += std::abs(v);
        rowsum[j] += std::abs(v);
      }
    }
  }
  for (index_t j = 0; j < n; ++j) {
    t.add(j, j, complex_t(rowsum[j] + 1.0, 0.5));
  }
  return t.to_csc();
}

}  // namespace spx::gen
