// Surrogates for the paper's nine University of Florida matrices.
//
// The UF files (audi, Flan, Serena, ...) are not redistributable, so each
// paper matrix is mapped onto a synthetic generator from the same
// application domain, matched on: precision (D/Z), factorization kind
// (LL^T / LDL^T / LU), dimensionality (2D shell vs 3D volume), and the
// paper's *relative* flop ranking (Table I's last column), at 1/100 flop
// scale by default so the full evaluation runs on one host.  Pass a scale
// factor > 1 to grow them toward paper size.
#pragma once

#include <string>
#include <variant>
#include <vector>

#include "mat/generators.hpp"

namespace spx {

struct SurrogateSpec {
  std::string name;        ///< paper matrix name
  Precision prec;
  Factorization method;
  /// Table I reference values (paper's hardware/dataset).
  double paper_size;
  double paper_nnza;
  double paper_nnzl;
  double paper_tflop;
  /// Generator and base grid dimension.
  enum class Gen { Grid2D, Grid3D, Elasticity, Helmholtz, Filter, ConvDiff };
  Gen gen;
  index_t base_dim;
};

/// The nine matrices of Table I, in the paper's order.
const std::vector<SurrogateSpec>& paper_surrogates();

/// Look up a surrogate by (case-insensitive) paper name.
const SurrogateSpec& surrogate_by_name(const std::string& name);

/// Materializes a real-precision surrogate; requires spec.prec == D.
CscMatrix<real_t> build_surrogate_d(const SurrogateSpec& spec,
                                    double scale = 1.0);
/// Materializes a complex-precision surrogate; requires spec.prec == Z.
CscMatrix<complex_t> build_surrogate_z(const SurrogateSpec& spec,
                                       double scale = 1.0);

/// Grid edge after applying a volume scale factor.
index_t scaled_dim(const SurrogateSpec& spec, double scale);

}  // namespace spx
