#include "mat/triplets.hpp"

#include <algorithm>
#include <numeric>

namespace spx {

template <typename T>
CscMatrix<T> Triplets<T>::to_csc() const {
  const std::size_t nz = rows_.size();
  // Counting sort by column, then sort each column's entries by row and
  // collapse duplicates.  O(nnz log nnz_col), cache-friendly.
  std::vector<size_type> colptr(static_cast<std::size_t>(ncols_) + 1, 0);
  for (const index_t c : cols_) colptr[static_cast<std::size_t>(c) + 1]++;
  for (index_t j = 0; j < ncols_; ++j) colptr[j + 1] += colptr[j];

  std::vector<index_t> rowind(nz);
  std::vector<T> values(nz);
  {
    std::vector<size_type> next(colptr.begin(), colptr.end() - 1);
    for (std::size_t k = 0; k < nz; ++k) {
      const size_type p = next[cols_[k]]++;
      rowind[p] = rows_[k];
      values[p] = vals_[k];
    }
  }

  // Sort within columns and merge duplicates in place.
  std::vector<size_type> outptr(static_cast<std::size_t>(ncols_) + 1, 0);
  size_type w = 0;
  std::vector<std::pair<index_t, T>> colbuf;
  for (index_t j = 0; j < ncols_; ++j) {
    colbuf.clear();
    for (size_type p = colptr[j]; p < colptr[j + 1]; ++p) {
      colbuf.emplace_back(rowind[p], values[p]);
    }
    std::sort(colbuf.begin(), colbuf.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    for (std::size_t k = 0; k < colbuf.size(); ++k) {
      if (w > outptr[j] && rowind[w - 1] == colbuf[k].first) {
        values[w - 1] += colbuf[k].second;
      } else {
        rowind[w] = colbuf[k].first;
        values[w] = colbuf[k].second;
        ++w;
      }
    }
    outptr[j + 1] = w;
  }
  rowind.resize(w);
  values.resize(w);
  return CscMatrix<T>(nrows_, ncols_, std::move(outptr), std::move(rowind),
                      std::move(values));
}

template class Triplets<real_t>;
template class Triplets<complex_t>;
template class Triplets<real32_t>;

}  // namespace spx
