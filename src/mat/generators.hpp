// Synthetic problem generators.
//
// The paper evaluates on nine University of Florida matrices spanning 2D/3D
// discretizations, real and complex arithmetic, and the three factorization
// kinds.  Those files are not redistributable here, so the generators below
// produce the classic model problems from the same application domains
// (structural mechanics, electromagnetics, fluid dynamics); the surrogate
// registry (surrogates.hpp) maps each paper matrix to one of these.
#pragma once

#include "common/rng.hpp"
#include "mat/csc.hpp"

namespace spx::gen {

/// 5-point Laplacian on an nx-by-ny grid (SPD, 2D shell/sheet problems).
CscMatrix<real_t> grid2d_laplacian(index_t nx, index_t ny);

/// 7-point Laplacian on an nx*ny*nz grid (SPD, 3D volume problems).
CscMatrix<real_t> grid3d_laplacian(index_t nx, index_t ny, index_t nz);

/// 3D linear elasticity surrogate: 3 dofs per grid node, vector Laplacian
/// with inter-component coupling; SPD, ~81 nnz/row like FEM stiffness
/// matrices (audi/Geo1438-like).
CscMatrix<real_t> elasticity3d(index_t nx, index_t ny, index_t nz);

/// Complex-symmetric (NOT Hermitian) Helmholtz problem with an absorbing
/// PML-like complex shift: 7-point stencil, complex symmetric => LDL^T in Z
/// arithmetic (pmlDF-like).
CscMatrix<complex_t> helmholtz3d(index_t nx, index_t ny, index_t nz,
                                 double wavenumber = 0.6);

/// Complex unsymmetric frequency-domain filter surrogate: Helmholtz plus a
/// skew convection-like term (FilterV2-like, Z LU).
CscMatrix<complex_t> filter3d(index_t nx, index_t ny, index_t nz);

/// Real unsymmetric convection-diffusion (upwind) on a 3D grid; pattern of
/// A is unsymmetric in values but structurally symmetric (MHD/HOOK-like,
/// D LU).
CscMatrix<real_t> convection_diffusion3d(index_t nx, index_t ny, index_t nz,
                                         double peclet = 10.0);

/// Dense-ish random symmetric positive definite matrix of order n with
/// given off-diagonal density; used by property tests (small n only).
CscMatrix<real_t> random_spd(index_t n, double density, Rng& rng);

/// Random symmetric *indefinite* matrix (diagonally dominated in magnitude
/// so static-pivoting LDL^T is stable); property tests.
CscMatrix<real_t> random_sym_indefinite(index_t n, double density, Rng& rng);

/// Random structurally-symmetric unsymmetric matrix, diagonally dominant
/// (static-pivoting LU safe); property tests.
CscMatrix<real_t> random_unsym(index_t n, double density, Rng& rng);

/// Random complex symmetric diagonally-dominant matrix; property tests.
CscMatrix<complex_t> random_complex_sym(index_t n, double density, Rng& rng);

/// Singular but consistent-solvable SPSD matrix of order n and rank n-k:
/// k disconnected path segments, each carrying a pure Neumann (free-free)
/// 1D Laplacian whose null space is the constant vector.  With a rhs that
/// is orthogonal to each segment's constants, LL^T under static-pivot
/// perturbation factors it and refinement converges (robustness tests).
CscMatrix<real_t> rank_deficient(index_t n, index_t k);

/// Well-conditioned symmetric matrix of order n whose leading pivot
/// sequence meets one pivot of size `eps` (a decoupled 2x2 block
/// [[eps, 1], [1, eps]] at the end): LDL^T/LU without pivoting must
/// perturb (or, with eps = 0, throw) exactly there, yet the matrix itself
/// is benign, so refinement restores full accuracy.
CscMatrix<real_t> tiny_pivot(index_t n, double eps);

}  // namespace spx::gen
