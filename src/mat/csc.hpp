// Compressed-sparse-column matrix container.
//
// CSC is the native layout of supernodal solvers: a panel is a set of
// contiguous columns.  Row indices within a column are kept sorted; the
// container is immutable after construction (build through Triplets or the
// generators).
#pragma once

#include <span>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"

namespace spx {

template <typename T>
class CscMatrix {
 public:
  CscMatrix() = default;

  /// Takes ownership of a fully-formed CSC structure.  `colptr` has n+1
  /// entries; row indices must be sorted and unique within each column.
  CscMatrix(index_t nrows, index_t ncols, std::vector<size_type> colptr,
            std::vector<index_t> rowind, std::vector<T> values)
      : nrows_(nrows),
        ncols_(ncols),
        colptr_(std::move(colptr)),
        rowind_(std::move(rowind)),
        values_(std::move(values)) {
    SPX_CHECK_ARG(static_cast<index_t>(colptr_.size()) == ncols_ + 1,
                  "colptr size must be ncols+1");
    SPX_CHECK_ARG(colptr_.back() == static_cast<size_type>(rowind_.size()),
                  "colptr/rowind mismatch");
    SPX_CHECK_ARG(rowind_.size() == values_.size(),
                  "rowind/values mismatch");
    for (index_t j = 0; j < ncols_; ++j) {
      for (size_type p = colptr_[j] + 1; p < colptr_[j + 1]; ++p) {
        SPX_CHECK_ARG(rowind_[p - 1] < rowind_[p],
                      "row indices must be sorted and unique");
      }
    }
  }

  index_t nrows() const { return nrows_; }
  index_t ncols() const { return ncols_; }
  size_type nnz() const { return static_cast<size_type>(rowind_.size()); }

  std::span<const size_type> colptr() const { return colptr_; }
  std::span<const index_t> rowind() const { return rowind_; }
  std::span<const T> values() const { return values_; }
  std::span<T> values_mut() { return values_; }

  /// Row indices of column j.
  std::span<const index_t> col_rows(index_t j) const {
    return {rowind_.data() + colptr_[j],
            static_cast<std::size_t>(colptr_[j + 1] - colptr_[j])};
  }
  /// Values of column j.
  std::span<const T> col_values(index_t j) const {
    return {values_.data() + colptr_[j],
            static_cast<std::size_t>(colptr_[j + 1] - colptr_[j])};
  }

  /// y = A*x (for residual checks; not performance-critical).
  void multiply(std::span<const T> x, std::span<T> y) const {
    SPX_CHECK_ARG(static_cast<index_t>(x.size()) == ncols_, "x size");
    SPX_CHECK_ARG(static_cast<index_t>(y.size()) == nrows_, "y size");
    std::fill(y.begin(), y.end(), T(0));
    for (index_t j = 0; j < ncols_; ++j) {
      const T xj = x[j];
      for (size_type p = colptr_[j]; p < colptr_[j + 1]; ++p) {
        y[rowind_[p]] += values_[p] * xj;
      }
    }
  }

  /// Entry lookup by binary search; returns 0 when the entry is not stored.
  T at(index_t i, index_t j) const {
    const auto rows = col_rows(j);
    const auto it = std::lower_bound(rows.begin(), rows.end(), i);
    if (it == rows.end() || *it != i) return T(0);
    return values_[colptr_[j] + (it - rows.begin())];
  }

  /// True when the *pattern and values* are symmetric (A == A^T).  Used by
  /// tests and by Solver input validation for LLT/LDLT.
  bool is_symmetric(real_of_t<T> tol = 0) const;

  /// Transposed copy.
  CscMatrix<T> transposed() const;

 private:
  index_t nrows_ = 0;
  index_t ncols_ = 0;
  std::vector<size_type> colptr_;
  std::vector<index_t> rowind_;
  std::vector<T> values_;
};

template <typename T>
CscMatrix<T> CscMatrix<T>::transposed() const {
  std::vector<size_type> tptr(static_cast<std::size_t>(nrows_) + 1, 0);
  for (const index_t r : rowind_) tptr[static_cast<std::size_t>(r) + 1]++;
  for (index_t i = 0; i < nrows_; ++i) tptr[i + 1] += tptr[i];
  std::vector<index_t> tind(rowind_.size());
  std::vector<T> tval(values_.size());
  std::vector<size_type> next(tptr.begin(), tptr.end() - 1);
  for (index_t j = 0; j < ncols_; ++j) {
    for (size_type p = colptr_[j]; p < colptr_[j + 1]; ++p) {
      const size_type q = next[rowind_[p]]++;
      tind[q] = j;
      tval[q] = values_[p];
    }
  }
  return CscMatrix<T>(ncols_, nrows_, std::move(tptr), std::move(tind),
                      std::move(tval));
}

template <typename T>
bool CscMatrix<T>::is_symmetric(real_of_t<T> tol) const {
  if (nrows_ != ncols_) return false;
  const CscMatrix<T> t = transposed();
  if (t.nnz() != nnz()) return false;
  for (index_t j = 0; j < ncols_; ++j) {
    const auto ra = col_rows(j);
    const auto rb = t.col_rows(j);
    if (ra.size() != rb.size()) return false;
    for (std::size_t k = 0; k < ra.size(); ++k) {
      if (ra[k] != rb[k]) return false;
      if (magnitude<T>(col_values(j)[k] - t.col_values(j)[k]) > tol) {
        return false;
      }
    }
  }
  return true;
}

extern template class CscMatrix<real_t>;
extern template class CscMatrix<complex_t>;
extern template class CscMatrix<real32_t>;

/// Version of the pattern-digest definition below.  The digest travels on
/// the wire (net/protocol.hpp carries it in every request frame, and the
/// front-end consistent-hashes it to pick a shard), so its definition is a
/// cross-process contract: bump this whenever the mixing scheme changes so
/// that two builds can detect they disagree, and keep the golden-value test
/// in tests/test_net.cpp in sync.
inline constexpr std::uint32_t kPatternDigestVersion = 2;

/// 64-bit FNV-1a digest of a sparsity structure (shape + colptr + rowind),
/// independent of the stored values.  This is what makes an analysis
/// reusable across matrices "sharing one pattern" checkable in O(nnz):
/// equal digests (plus equal n and nnz, which the callers also compare)
/// identify patterns for the solver's lifecycle check, for the solve
/// service's analysis cache, and for shard routing in the network layer.
///
/// The digest is endian-stable: every word is folded byte-by-byte starting
/// from the least-significant byte, so big- and little-endian hosts agree
/// -- a requirement for using it as the consistent-hash key across a
/// heterogeneous shard fleet.  kPatternDigestVersion is mixed in first, so
/// digests from different definitions can never collide silently.
std::uint64_t pattern_digest(index_t nrows, index_t ncols,
                             std::span<const size_type> colptr,
                             std::span<const index_t> rowind);

/// FNV-1a over an arbitrary byte string (the primitive behind
/// pattern_digest); also used by the shard ring to place virtual nodes.
std::uint64_t fnv1a64(const void* data, std::size_t size,
                      std::uint64_t seed = 14695981039346656037ull);

template <typename T>
std::uint64_t pattern_digest(const CscMatrix<T>& a) {
  return pattern_digest(a.nrows(), a.ncols(), a.colptr(), a.rowind());
}

}  // namespace spx
