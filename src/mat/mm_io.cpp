#include "mat/mm_io.hpp"

#include <fstream>
#include <sstream>

#include "mat/triplets.hpp"

namespace spx {
namespace {

struct MmHeader {
  bool complex_field = false;
  bool pattern = false;
  bool symmetric = false;
  bool skew = false;
};

MmHeader parse_header(const std::string& line) {
  std::istringstream ss(line);
  std::string banner, object, format, field, symmetry;
  ss >> banner >> object >> format >> field >> symmetry;
  SPX_CHECK_ARG(banner == "%%MatrixMarket", "not a MatrixMarket file");
  SPX_CHECK_ARG(object == "matrix" && format == "coordinate",
                "only coordinate matrices are supported");
  MmHeader h;
  h.complex_field = (field == "complex");
  h.pattern = (field == "pattern");
  h.symmetric = (symmetry == "symmetric");
  h.skew = (symmetry == "skew-symmetric");
  SPX_CHECK_ARG(symmetry != "hermitian",
                "hermitian MatrixMarket files are not supported");
  return h;
}

template <typename T>
T read_value(std::istringstream& ss, const MmHeader& h) {
  if (h.pattern) return T(1);
  double re = 0.0, im = 0.0;
  ss >> re;
  if (h.complex_field) ss >> im;
  if constexpr (is_complex_v<T>) {
    return T(re, im);
  } else {
    SPX_CHECK_ARG(!h.complex_field,
                  "complex file read into a real matrix");
    return T(re);
  }
}

}  // namespace

template <typename T>
CscMatrix<T> read_matrix_market(std::istream& in) {
  std::string line;
  SPX_CHECK_ARG(static_cast<bool>(std::getline(in, line)), "empty stream");
  const MmHeader h = parse_header(line);
  // Skip comments.
  while (std::getline(in, line)) {
    if (!line.empty() && line[0] != '%') break;
  }
  std::istringstream dims(line);
  long nrows = 0, ncols = 0, nz = 0;
  dims >> nrows >> ncols >> nz;
  SPX_CHECK_ARG(nrows > 0 && ncols > 0 && nz >= 0, "bad size line");

  Triplets<T> t(static_cast<index_t>(nrows), static_cast<index_t>(ncols));
  for (long k = 0; k < nz; ++k) {
    SPX_CHECK_ARG(static_cast<bool>(std::getline(in, line)),
                  "truncated MatrixMarket file");
    std::istringstream ss(line);
    long i = 0, j = 0;
    ss >> i >> j;
    const T v = read_value<T>(ss, h);
    t.add(static_cast<index_t>(i - 1), static_cast<index_t>(j - 1), v);
    if ((h.symmetric || h.skew) && i != j) {
      t.add(static_cast<index_t>(j - 1), static_cast<index_t>(i - 1),
            h.skew ? -v : v);
    }
  }
  return t.to_csc();
}

template <typename T>
CscMatrix<T> read_matrix_market_file(const std::string& path) {
  std::ifstream in(path);
  SPX_CHECK_ARG(in.good(), "cannot open " + path);
  return read_matrix_market<T>(in);
}

template <typename T>
void write_matrix_market(std::ostream& out, const CscMatrix<T>& a) {
  out << "%%MatrixMarket matrix coordinate "
      << (is_complex_v<T> ? "complex" : "real") << " general\n";
  out << a.nrows() << " " << a.ncols() << " " << a.nnz() << "\n";
  out.precision(17);
  for (index_t j = 0; j < a.ncols(); ++j) {
    const auto rows = a.col_rows(j);
    const auto vals = a.col_values(j);
    for (std::size_t k = 0; k < rows.size(); ++k) {
      out << (rows[k] + 1) << " " << (j + 1) << " ";
      if constexpr (is_complex_v<T>) {
        out << vals[k].real() << " " << vals[k].imag() << "\n";
      } else {
        out << vals[k] << "\n";
      }
    }
  }
}

template <typename T>
void write_matrix_market_file(const std::string& path,
                              const CscMatrix<T>& a) {
  std::ofstream out(path);
  SPX_CHECK_ARG(out.good(), "cannot open " + path);
  write_matrix_market(out, a);
}

template CscMatrix<real_t> read_matrix_market<real_t>(std::istream&);
template CscMatrix<complex_t> read_matrix_market<complex_t>(std::istream&);
template CscMatrix<real_t> read_matrix_market_file<real_t>(
    const std::string&);
template CscMatrix<complex_t> read_matrix_market_file<complex_t>(
    const std::string&);
template void write_matrix_market<real_t>(std::ostream&,
                                          const CscMatrix<real_t>&);
template void write_matrix_market<complex_t>(std::ostream&,
                                             const CscMatrix<complex_t>&);
template void write_matrix_market_file<real_t>(const std::string&,
                                               const CscMatrix<real_t>&);
template void write_matrix_market_file<complex_t>(const std::string&,
                                                  const CscMatrix<complex_t>&);

}  // namespace spx
