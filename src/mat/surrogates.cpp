#include "mat/surrogates.hpp"

#include <algorithm>
#include <cmath>

namespace spx {

const std::vector<SurrogateSpec>& paper_surrogates() {
  using G = SurrogateSpec::Gen;
  // Base dimensions chosen so the surrogates' factorization flops keep the
  // paper's Table I ranking at roughly 1/100 scale (afshell10 smallest,
  // Serena largest); see bench_table1 for the side-by-side numbers.
  static const std::vector<SurrogateSpec> specs = {
      {"afshell10", Precision::D, Factorization::LU, 1.5e6, 27e6, 610e6,
       0.12, G::Grid2D, 280},
      {"FilterV2", Precision::Z, Factorization::LU, 0.6e6, 12e6, 536e6,
       3.6, G::Filter, 33},
      {"Flan", Precision::D, Factorization::LLT, 1.6e6, 59e6, 1712e6, 5.3,
       G::Grid3D, 41},
      {"audi", Precision::D, Factorization::LLT, 0.9e6, 39e6, 1325e6, 6.5,
       G::Elasticity, 28},
      {"MHD", Precision::D, Factorization::LU, 0.5e6, 24e6, 1133e6, 6.6,
       G::ConvDiff, 40},
      {"Geo1438", Precision::D, Factorization::LLT, 1.4e6, 32e6, 2768e6,
       23.0, G::Elasticity, 35},
      {"pmlDF", Precision::Z, Factorization::LDLT, 1.0e6, 8e6, 1105e6,
       28.0, G::Helmholtz, 56},
      {"HOOK", Precision::D, Factorization::LU, 1.5e6, 31e6, 4168e6, 35.0,
       G::ConvDiff, 50},
      {"Serena", Precision::D, Factorization::LDLT, 1.4e6, 32e6, 3365e6,
       47.0, G::Elasticity, 39},
  };
  return specs;
}

const SurrogateSpec& surrogate_by_name(const std::string& name) {
  auto lower = [](std::string s) {
    std::transform(s.begin(), s.end(), s.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    return s;
  };
  for (const SurrogateSpec& s : paper_surrogates()) {
    if (lower(s.name) == lower(name)) return s;
  }
  throw InvalidArgument("unknown surrogate matrix: " + name);
}

index_t scaled_dim(const SurrogateSpec& spec, double scale) {
  // Volume scale: 2D problems grow with sqrt, 3D with cbrt.
  const double exponent =
      spec.gen == SurrogateSpec::Gen::Grid2D ? 0.5 : (1.0 / 3.0);
  const double d = spec.base_dim * std::pow(scale, exponent);
  return std::max<index_t>(4, static_cast<index_t>(std::lround(d)));
}

CscMatrix<real_t> build_surrogate_d(const SurrogateSpec& spec,
                                    double scale) {
  SPX_CHECK_ARG(spec.prec == Precision::D,
                spec.name + " is a complex (Z) matrix");
  const index_t d = scaled_dim(spec, scale);
  switch (spec.gen) {
    case SurrogateSpec::Gen::Grid2D:
      return gen::grid2d_laplacian(d, d);
    case SurrogateSpec::Gen::Grid3D:
      return gen::grid3d_laplacian(d, d, d);
    case SurrogateSpec::Gen::Elasticity:
      return gen::elasticity3d(d, d, d);
    case SurrogateSpec::Gen::ConvDiff:
      return gen::convection_diffusion3d(d, d, d);
    default:
      throw InternalError("generator/precision mismatch");
  }
}

CscMatrix<complex_t> build_surrogate_z(const SurrogateSpec& spec,
                                       double scale) {
  SPX_CHECK_ARG(spec.prec == Precision::Z,
                spec.name + " is a real (D) matrix");
  const index_t d = scaled_dim(spec, scale);
  switch (spec.gen) {
    case SurrogateSpec::Gen::Helmholtz:
      return gen::helmholtz3d(d, d, d);
    case SurrogateSpec::Gen::Filter:
      return gen::filter3d(d, d, d);
    default:
      throw InternalError("generator/precision mismatch");
  }
}

}  // namespace spx
