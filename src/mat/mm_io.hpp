// MatrixMarket coordinate-format reader/writer.
//
// Lets users bring the actual University of Florida matrices (audi, Flan,
// Serena, ...) when they have them; the benches fall back to the synthetic
// surrogates otherwise.  Supports real/complex, general/symmetric headers.
#pragma once

#include <iosfwd>
#include <string>

#include "mat/csc.hpp"

namespace spx {

template <typename T>
CscMatrix<T> read_matrix_market(std::istream& in);

template <typename T>
CscMatrix<T> read_matrix_market_file(const std::string& path);

template <typename T>
void write_matrix_market(std::ostream& out, const CscMatrix<T>& a);

template <typename T>
void write_matrix_market_file(const std::string& path, const CscMatrix<T>& a);

}  // namespace spx
