#include "runtime/device_engine.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <deque>
#include <thread>
#include <unordered_map>

namespace spx {

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

void throttle(double seconds) {
  if (seconds <= 0.0) return;
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
}

}  // namespace

// ---- TransferTicket --------------------------------------------------------

void TransferTicket::wait() {
  std::unique_lock<std::mutex> lock(m_);
  cv_.wait(lock, [&] { return done_; });
}

void TransferTicket::complete() {
  {
    std::lock_guard<std::mutex> lock(m_);
    done_ = true;
  }
  cv_.notify_all();
}

bool TransferTicket::done() const {
  std::lock_guard<std::mutex> lock(m_);
  return done_;
}

// ---- task_handles ----------------------------------------------------------

std::vector<index_t> task_handles(const SymbolicStructure& st,
                                  const SubtreeGroups* groups, const Task& t) {
  if (t.kind == TaskKind::Update) {
    const index_t dst = st.targets[t.panel][t.edge].dst;
    if (dst == t.panel) return {t.panel};
    return {t.panel, dst};
  }
  if (t.kind == TaskKind::Subtree) {
    SPX_ASSERT(groups != nullptr && "subtree task without groups");
    std::vector<index_t> handles = groups->members[t.panel];
    for (const index_t m : groups->members[t.panel]) {
      for (const UpdateEdge& e : st.targets[m]) {
        if (groups->root_of[e.dst] != t.panel) handles.push_back(e.dst);
      }
    }
    std::sort(handles.begin(), handles.end());
    handles.erase(std::unique(handles.begin(), handles.end()), handles.end());
    return handles;
  }
  return {t.panel};
}

// ---- CpuEngine -------------------------------------------------------------

namespace {

/// Engine 0: the host memory space behind the CPU worker pool.  Host
/// memory is the home location, so acquiring only ever means pulling a
/// device-dirty handle back through its owning engine's DMA queue.
class CpuEngine final : public DeviceEngine {
 public:
  CpuEngine(EngineGroup* group, DataDirectory* dir, int streams)
      : group_(group), dir_(dir), streams_(streams) {}

  const char* name() const override { return "cpu"; }
  ResourceKind resource_kind() const override { return ResourceKind::Cpu; }
  int num_streams() const override { return streams_; }

  double acquire(const std::vector<index_t>& handles) override {
    const auto t0 = std::chrono::steady_clock::now();
    bool waited = false;
    for (const index_t h : handles) {
      while (!dir_->valid_on(h, DataDirectory::kHost)) {
        std::shared_ptr<TransferTicket> ticket = group_->request_host_copy(h);
        if (ticket == nullptr) break;
        ticket->wait();
        waited = true;
      }
    }
    return waited ? seconds_since(t0) : 0.0;
  }

  void release(const std::vector<index_t>& handles,
               const std::vector<index_t>& written) override {
    (void)handles;
    for (const index_t w : written) {
      dir_->note_write(w, DataDirectory::kHost);
    }
  }

  /// Host-side overlap: start the D2H write-back of device-dirty handles
  /// a queued CPU task will need, so its later acquire finds the host
  /// copy valid.  The driver only prefetches *ready* tasks, so the bytes
  /// written back are final.
  void prefetch(const std::vector<index_t>& handles) override {
    for (const index_t h : handles) {
      if (dir_->valid_on(h, DataDirectory::kHost)) continue;
      group_->request_host_copy(h, /*demand=*/false);
    }
  }

 private:
  EngineGroup* group_;
  DataDirectory* dir_;
  int streams_;
};

// ---- EmulatedAcceleratorEngine ---------------------------------------------

/// Engines 1..N: an accelerator emulated on the host.  A dedicated DMA
/// thread drains a FIFO of transfer jobs; each job is throttled to the
/// EngineSpec link, then performs the staging memcpy between the factor
/// panels and this device's arena under the panel's lock, updating the
/// coherence directory inside the same critical section (so a staging
/// copy can never be marked valid around a concurrent panel write).
class EmulatedAcceleratorEngine final : public DeviceEngine {
 public:
  EmulatedAcceleratorEngine(int device, const EngineSpec& spec,
                            DataDirectory& dir, PanelStore& store,
                            FaultInjector* fault, obs::MetricsRegistry& reg,
                            obs::Tracer* tracer, obs::SpanContext parent)
      : device_(device),
        spec_(spec),
        dir_(&dir),
        store_(&store),
        fault_(fault),
        tracer_(tracer),
        parent_(parent),
        lru_(spec.memory_bytes),
        m_bytes_h2d_(reg.counter(
            "spx_engine_transfer_bytes_total",
            "Bytes staged between host and device engines",
            {{"dir", "h2d"}, {"device", std::to_string(device)}})),
        m_bytes_d2h_(reg.counter(
            "spx_engine_transfer_bytes_total",
            "Bytes staged between host and device engines",
            {{"dir", "d2h"}, {"device", std::to_string(device)}})),
        m_transfers_h2d_(reg.counter(
            "spx_engine_transfers_total", "Staging transfers by direction",
            {{"dir", "h2d"}, {"device", std::to_string(device)}})),
        m_transfers_d2h_(reg.counter(
            "spx_engine_transfers_total", "Staging transfers by direction",
            {{"dir", "d2h"}, {"device", std::to_string(device)}})),
        m_evictions_(reg.counter(
            "spx_engine_evictions_total",
            "Panels evicted from device arenas under memory pressure",
            {{"device", std::to_string(device)}})),
        m_transfer_bytes_(reg.histogram("spx_engine_transfer_bytes",
                                        obs::Histogram::byte_bounds(),
                                        "Staging transfer sizes")) {}

  void bind(EngineGroup* group) { group_ = group; }

  const char* name() const override { return "emu"; }
  ResourceKind resource_kind() const override {
    return ResourceKind::GpuStream;
  }
  int num_streams() const override { return spec_.streams; }

  void start() override {
    // One DMA thread per direction: PCIe is full duplex and real devices
    // expose separate H2D/D2H copy engines, so a demanded write-back
    // never queues behind an in-progress speculative fetch.
    dma_h2d_ = std::thread([this] { dma_loop(&h2d_); });
    dma_d2h_ = std::thread([this] { dma_loop(&d2h_); });
  }

  void stop() override {
    {
      std::lock_guard<std::mutex> lock(m_);
      stopping_ = true;
    }
    cv_.notify_all();
    if (dma_h2d_.joinable()) dma_h2d_.join();
    if (dma_d2h_.joinable()) dma_d2h_.join();
  }

  double acquire(const std::vector<index_t>& handles) override {
    const auto t0 = std::chrono::steady_clock::now();
    bool waited = false;
    {
      std::lock_guard<std::mutex> lock(m_);
      for (const index_t h : handles) lru_.pin(h);
    }
    std::vector<std::shared_ptr<TransferTicket>> pending;
    for (const index_t h : handles) {
      if (dir_->valid_on(h, device_)) {
        std::lock_guard<std::mutex> lock(m_);
        lru_.touch(h);
        continue;
      }
      // Two-hop path: another device owns the only (dirty) copy -- pull
      // it home first, then stage host -> this device.
      while (!dir_->valid_on(h, DataDirectory::kHost)) {
        std::shared_ptr<TransferTicket> wb = group_->request_host_copy(h);
        if (wb == nullptr) break;
        wb->wait();
        waited = true;
      }
      if (std::shared_ptr<TransferTicket> t =
              enqueue(h, /*to_device=*/true, /*demand=*/true)) {
        pending.push_back(std::move(t));
      }
    }
    for (const std::shared_ptr<TransferTicket>& t : pending) {
      t->wait();
      waited = true;
    }
    return waited ? seconds_since(t0) : 0.0;
  }

  void release(const std::vector<index_t>& handles,
               const std::vector<index_t>& written) override {
    for (const index_t w : written) {
      // Compute ran against host (unified) memory; refresh the arena
      // copy from the freshly-written host bytes so the device-side
      // instance stays byte-identical, then claim MSI ownership.
      std::lock_guard<std::mutex> panel_lock(store_->panel_mutex(w));
      std::lock_guard<std::mutex> lock(m_);
      const auto it = arena_.find(w);
      if (it != arena_.end()) {
        store_->read_panel(w, it->second.data());
        dir_->note_write(w, device_);
      } else {
        // Written without a staged copy (should not happen after a
        // successful acquire, but stay coherent): host keeps ownership.
        dir_->note_write(w, DataDirectory::kHost);
      }
    }
    std::lock_guard<std::mutex> lock(m_);
    for (const index_t h : handles) lru_.unpin(h);
  }

  void prefetch(const std::vector<index_t>& handles) override {
    for (const index_t h : handles) {
      if (dir_->valid_on(h, device_)) {
        std::lock_guard<std::mutex> lock(m_);
        lru_.touch(h);
        continue;
      }
      // Never chain a cross-device write-back from the prefetch path;
      // acquire() will do it synchronously if still needed.
      if (!dir_->valid_on(h, DataDirectory::kHost)) continue;
      enqueue(h, /*to_device=*/true, /*demand=*/false);
    }
  }

  std::shared_ptr<TransferTicket> request_writeback(index_t p,
                                                    bool demand) override {
    if (dir_->valid_on(p, DataDirectory::kHost)) return nullptr;
    return enqueue(p, /*to_device=*/false, demand);
  }

  TransferCounters counters() const override {
    std::lock_guard<std::mutex> lock(m_);
    return counters_;
  }

 private:
  struct TransferJob {
    index_t panel = -1;
    bool to_device = true;
    std::shared_ptr<TransferTicket> ticket;
  };

  static std::int64_t job_key(index_t p, bool to_device) {
    return (static_cast<std::int64_t>(p) << 1) | (to_device ? 1 : 0);
  }

  /// One direction of the link: a demand FIFO (a worker is, or is about
  /// to be, blocked on these) and a speculative FIFO (prefetch); the
  /// direction's DMA thread drains demand first.
  struct Direction {
    std::deque<TransferJob> demand_q;
    std::deque<TransferJob> prefetch_q;
    bool empty() const { return demand_q.empty() && prefetch_q.empty(); }
  };

  /// Queues a transfer task (deduplicating against in-flight ones) and
  /// returns its completion ticket.  Demand jobs go to the priority
  /// queue; a demand request for an already-queued speculative job
  /// promotes it.
  std::shared_ptr<TransferTicket> enqueue(index_t p, bool to_device,
                                          bool demand) {
    std::shared_ptr<TransferTicket> ticket;
    {
      std::lock_guard<std::mutex> lock(m_);
      const std::int64_t key = job_key(p, to_device);
      const auto it = inflight_.find(key);
      if (it != inflight_.end()) {
        if (demand) promote(to_device ? h2d_ : d2h_, key);
        return it->second;
      }
      ticket = std::make_shared<TransferTicket>();
      inflight_[key] = ticket;
      Direction& dir = to_device ? h2d_ : d2h_;
      (demand ? dir.demand_q : dir.prefetch_q).push_back(
          {p, to_device, ticket});
    }
    cv_.notify_all();
    return ticket;
  }

  /// Moves a queued speculative job to its demand queue (under m_).
  static void promote(Direction& dir, std::int64_t key) {
    for (auto it = dir.prefetch_q.begin(); it != dir.prefetch_q.end();
         ++it) {
      if (job_key(it->panel, it->to_device) != key) continue;
      dir.demand_q.push_back(*it);
      dir.prefetch_q.erase(it);
      return;
    }
  }

  void dma_loop(Direction* dir) {
    for (;;) {
      TransferJob job;
      {
        std::unique_lock<std::mutex> lock(m_);
        cv_.wait(lock, [&] { return stopping_ || !dir->empty(); });
        if (dir->empty()) return;  // stopping and drained
        std::deque<TransferJob>& q =
            dir->demand_q.empty() ? dir->prefetch_q : dir->demand_q;
        job = q.front();
        q.pop_front();
      }
      if (job.to_device) {
        stage_h2d(job.panel);
      } else {
        stage_d2h(job.panel);
      }
      {
        std::lock_guard<std::mutex> lock(m_);
        inflight_.erase(job_key(job.panel, job.to_device));
      }
      job.ticket->complete();
    }
  }

  /// Host -> device staging: throttle to the emulated link, make room,
  /// then copy the panel bytes into the arena.  The memcpy and the
  /// directory update share one panel-lock critical section: a writer
  /// that sneaks in after them invalidates this copy via note_write, so
  /// the directory can never claim stale staged bytes valid.
  void stage_h2d(index_t p) {
    if (fault_ != nullptr) fault_->on_transfer_start();
    const double bytes = dir_->panel_bytes(p);
    const double t0 = tracer_ != nullptr ? tracer_->now() : 0.0;
    throttle(spec_.transfer_seconds(bytes));
    make_room(bytes, p);
    bool copied = false;
    {
      std::lock_guard<std::mutex> panel_lock(store_->panel_mutex(p));
      // The host copy can have vanished since this job was queued (a
      // device write invalidated it); the acquire path re-requests after
      // the write-back, so just drop the job.
      if (dir_->valid_on(p, DataDirectory::kHost) &&
          !dir_->valid_on(p, device_)) {
        const std::size_t n = store_->panel_bytes(p);
        std::lock_guard<std::mutex> lock(m_);
        std::vector<std::byte>& buf = arena_[p];
        buf.resize(n);
        store_->read_panel(p, buf.data());
        lru_.insert(p, bytes);
        dir_->add_copy(p, device_);
        copied = true;
      }
    }
    if (copied) note_transfer(p, bytes, /*to_device=*/true, t0);
  }

  /// Device -> host write-back of a dirty copy.  The arena bytes are
  /// byte-identical to the host's (compute runs on unified memory), so
  /// this is a real memcpy that can never corrupt -- it exists to move
  /// real bytes through the throttled link and flip dirty -> clean.
  void stage_d2h(index_t p) {
    if (fault_ != nullptr) fault_->on_transfer_start();
    const double bytes = dir_->panel_bytes(p);
    const double t0 = tracer_ != nullptr ? tracer_->now() : 0.0;
    throttle(spec_.transfer_seconds(bytes));
    bool copied = false;
    {
      std::lock_guard<std::mutex> panel_lock(store_->panel_mutex(p));
      if (!dir_->valid_on(p, DataDirectory::kHost) &&
          dir_->dirty_on(p, device_)) {
        std::lock_guard<std::mutex> lock(m_);
        const auto it = arena_.find(p);
        SPX_ASSERT(it != arena_.end() && "dirty panel without arena copy");
        store_->write_panel(p, it->second.data());
        dir_->add_copy(p, DataDirectory::kHost);
        dir_->mark_clean(p, device_);
        copied = true;
      }
    }
    if (copied) note_transfer(p, bytes, /*to_device=*/false, t0);
  }

  /// Evicts LRU panels until `bytes` more fit (or nothing evictable is
  /// left -- then oversubscribe rather than deadlock).  Dirty victims are
  /// written back first; stale victims (invalidated by a host write) are
  /// dropped for free.
  void make_room(double bytes, index_t incoming) {
    for (;;) {
      index_t victim = -1;
      bool dirty = false;
      {
        std::lock_guard<std::mutex> lock(m_);
        const double incoming_resident =
            lru_.resident(incoming) ? dir_->panel_bytes(incoming) : 0.0;
        if (lru_.used() - incoming_resident + bytes <= lru_.capacity()) {
          return;
        }
        victim = lru_.eviction_victim(
            [&](index_t q) { return q != incoming; });
        if (victim < 0) return;  // everything pinned: oversubscribe
        dirty = dir_->dirty_on(victim, device_);
      }
      if (dirty) stage_d2h(victim);
      std::lock_guard<std::mutex> panel_lock(store_->panel_mutex(victim));
      std::lock_guard<std::mutex> lock(m_);
      if (!lru_.resident(victim) || lru_.pinned(victim)) continue;
      if (dir_->dirty_on(victim, device_)) continue;  // re-dirtied: retry
      if (dir_->valid_on(victim, device_)) dir_->drop_copy(victim, device_);
      lru_.remove(victim);
      arena_.erase(victim);
      counters_.evictions++;
      SPX_OBS(m_evictions_.inc());
    }
  }

  void note_transfer(index_t p, double bytes, bool to_device, double t0) {
    {
      std::lock_guard<std::mutex> lock(m_);
      if (to_device) {
        counters_.bytes_h2d += bytes;
        counters_.transfers_h2d++;
      } else {
        counters_.bytes_d2h += bytes;
        counters_.transfers_d2h++;
      }
    }
    SPX_OBS((to_device ? m_bytes_h2d_ : m_bytes_d2h_).inc(bytes));
    SPX_OBS((to_device ? m_transfers_h2d_ : m_transfers_d2h_).inc());
    SPX_OBS(m_transfer_bytes_.observe(bytes));
    if (tracer_ != nullptr && obs::enabled()) {
      tracer_->record_span(to_device ? "transfer.h2d" : "transfer.d2h",
                           "dma-", parent_, t0, tracer_->now(), device_,
                           static_cast<std::int64_t>(p),
                           static_cast<std::int64_t>(bytes));
    }
  }

  const int device_;
  const EngineSpec spec_;
  DataDirectory* dir_;
  PanelStore* store_;
  FaultInjector* fault_;
  obs::Tracer* tracer_;
  obs::SpanContext parent_;
  EngineGroup* group_ = nullptr;

  mutable std::mutex m_;
  std::condition_variable cv_;
  bool stopping_ = false;
  Direction h2d_;
  Direction d2h_;
  std::unordered_map<std::int64_t, std::shared_ptr<TransferTicket>> inflight_;
  DeviceLru lru_;
  std::unordered_map<index_t, std::vector<std::byte>> arena_;
  TransferCounters counters_;

  obs::Counter& m_bytes_h2d_;
  obs::Counter& m_bytes_d2h_;
  obs::Counter& m_transfers_h2d_;
  obs::Counter& m_transfers_d2h_;
  obs::Counter& m_evictions_;
  obs::Histogram& m_transfer_bytes_;

  std::thread dma_h2d_;
  std::thread dma_d2h_;
};

}  // namespace

// ---- EngineGroup -----------------------------------------------------------

EngineGroup::EngineGroup(const Machine& machine, const HeteroOptions& options,
                         DataDirectory& directory, PanelStore& store,
                         FaultInjector* fault, obs::MetricsRegistry& registry,
                         obs::Tracer* tracer, obs::SpanContext parent)
    : machine_(&machine), options_(options), directory_(&directory) {
  SPX_CHECK_ARG(
      machine.num_gpus() == static_cast<int>(options.devices.size()),
      "machine GPU count does not match HeteroOptions device count");
  SPX_CHECK_ARG(directory.num_gpus() >= machine.num_gpus(),
                "DataDirectory tracks fewer devices than the machine has");
  engines_.push_back(
      std::make_unique<CpuEngine>(this, &directory, machine.num_cpus()));
  for (std::size_t d = 0; d < options.devices.size(); ++d) {
    auto engine = std::make_unique<EmulatedAcceleratorEngine>(
        static_cast<int>(d), options.devices[d], directory, store, fault,
        registry, tracer, parent);
    engine->bind(this);
    engines_.push_back(std::move(engine));
  }
  for (const std::unique_ptr<DeviceEngine>& e : engines_) e->start();
}

EngineGroup::~EngineGroup() { stop(); }

DeviceEngine& EngineGroup::engine_of(int resource) {
  const Resource& res = machine_->resource(resource);
  if (res.kind == ResourceKind::Cpu) return *engines_.front();
  return *engines_[1 + static_cast<std::size_t>(res.gpu)];
}

double EngineGroup::acquire(int resource,
                            const std::vector<index_t>& handles) {
  return engine_of(resource).acquire(handles);
}

void EngineGroup::release(int resource, const std::vector<index_t>& handles,
                          const std::vector<index_t>& written) {
  engine_of(resource).release(handles, written);
}

void EngineGroup::prefetch(int resource,
                           const std::vector<index_t>& handles) {
  engine_of(resource).prefetch(handles);
}

std::shared_ptr<TransferTicket> EngineGroup::request_host_copy(index_t p,
                                                               bool demand) {
  const int src = directory_->source_of(p);
  if (src == DataDirectory::kHost) return nullptr;
  return engines_[1 + static_cast<std::size_t>(src)]->request_writeback(
      p, demand);
}

void EngineGroup::stop() {
  for (const std::unique_ptr<DeviceEngine>& e : engines_) e->stop();
}

TransferCounters EngineGroup::totals() const {
  TransferCounters total;
  for (const std::unique_ptr<DeviceEngine>& e : engines_) {
    total += e->counters();
  }
  return total;
}

// ---- hetero_from_env -------------------------------------------------------

namespace {

bool env_int(const char* name, long* out) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return false;
  *out = std::strtol(v, nullptr, 10);
  return true;
}

bool env_double(const char* name, double* out) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return false;
  *out = std::strtod(v, nullptr);
  return true;
}

}  // namespace

HeteroOptions hetero_from_env(HeteroOptions base) {
  long engines = 0;
  if (env_int("SPX_HETERO_ENGINES", &engines)) {
    base.devices.assign(static_cast<std::size_t>(std::max(0L, engines)),
                        EngineSpec{});
  }
  long streams = 0;
  double bw = 0.0, latency_us = 0.0, mem_mb = 0.0;
  const bool has_streams = env_int("SPX_HETERO_STREAMS", &streams);
  const bool has_bw = env_double("SPX_HETERO_BW_GBPS", &bw);
  const bool has_lat = env_double("SPX_HETERO_LATENCY_US", &latency_us);
  const bool has_mem = env_double("SPX_HETERO_MEM_MB", &mem_mb);
  for (EngineSpec& d : base.devices) {
    if (has_streams) d.streams = static_cast<int>(std::max(1L, streams));
    if (has_bw) d.bandwidth_gbps = bw;
    if (has_lat) d.latency_seconds = latency_us * 1e-6;
    if (has_mem) d.memory_bytes = mem_mb * 1024.0 * 1024.0;
  }
  long overlap = 0;
  if (env_int("SPX_HETERO_OVERLAP", &overlap)) base.overlap = overlap != 0;
  return base;
}

}  // namespace spx
