// Coherence directory for panel data across memory spaces.
//
// One entry per panel handle; locations are the host plus each GPU.  The
// protocol is MSI-like: a write invalidates every other copy, reads
// replicate.  The execution drivers own the authoritative instance (the
// simulator turns bytes_to_fetch into DMA-engine events; the real driver
// turns them into memcpys into per-device buffer pools), and model-based
// schedulers (dmda) read it to estimate transfer penalties.
#pragma once

#include <vector>

#include "common/error.hpp"
#include "symbolic/structure.hpp"

namespace spx {

class DataDirectory {
 public:
  static constexpr int kHost = -1;

  DataDirectory(const SymbolicStructure& st, Factorization kind,
                std::size_t scalar_bytes, int num_gpus)
      : st_(&st), num_gpus_(num_gpus) {
    const int arrays = (kind == Factorization::LU) ? 2 : 1;
    bytes_.resize(static_cast<std::size_t>(st.num_panels()));
    for (index_t p = 0; p < st.num_panels(); ++p) {
      bytes_[p] = static_cast<double>(st.panels[p].nrows) *
                  st.panels[p].width() * scalar_bytes * arrays;
    }
    reset();
  }

  void reset() {
    // Everything starts valid on the host only.
    valid_.assign(bytes_.size(), 1u);
  }

  int num_gpus() const { return num_gpus_; }
  double panel_bytes(index_t p) const { return bytes_[p]; }

  bool valid_on(index_t p, int loc) const {
    return (valid_[p] >> bit(loc)) & 1u;
  }

  /// Bytes that must move for panel p to be readable at `loc`.
  double bytes_to_fetch(index_t p, int loc) const {
    return valid_on(p, loc) ? 0.0 : bytes_[p];
  }

  /// Records that a copy of p now exists at `loc` (after a transfer).
  void add_copy(index_t p, int loc) { valid_[p] |= 1u << bit(loc); }

  /// Records a write to p at `loc`: all other copies become invalid.
  void note_write(index_t p, int loc) { valid_[p] = 1u << bit(loc); }

  /// Drops the copy at `loc` (LRU eviction); another valid copy must
  /// exist elsewhere.
  void drop_copy(index_t p, int loc) {
    valid_[p] &= ~(1u << bit(loc));
    SPX_ASSERT(valid_[p] != 0 && "evicted the last copy of a panel");
  }

  /// A location currently holding a valid copy (preferring the host).
  int source_of(index_t p) const {
    if (valid_on(p, kHost)) return kHost;
    for (int g = 0; g < num_gpus_; ++g) {
      if (valid_on(p, g)) return g;
    }
    SPX_ASSERT(false && "panel has no valid copy");
    return kHost;
  }

  /// Total bytes resident on a GPU (for memory-pressure accounting).
  double resident_bytes(int gpu) const {
    double total = 0.0;
    for (std::size_t p = 0; p < bytes_.size(); ++p) {
      if (valid_on(static_cast<index_t>(p), gpu)) total += bytes_[p];
    }
    return total;
  }

 private:
  static unsigned bit(int loc) { return static_cast<unsigned>(loc + 1); }

  const SymbolicStructure* st_;
  int num_gpus_;
  std::vector<double> bytes_;
  std::vector<std::uint32_t> valid_;
};

}  // namespace spx
