// Coherence directory for panel data across memory spaces.
//
// One entry per panel handle; locations are the host (kHost = -1) plus
// each device engine (0..num_gpus-1).  Two bit sets per handle:
//
//   valid  -- which locations hold a readable copy of the panel.  The
//             protocol is MSI-like: a write leaves exactly one valid
//             copy (the writer's), reads replicate.
//   dirty  -- a device copy that is the *only* authoritative instance
//             (the device wrote it and the host has not been refreshed).
//             Evicting a dirty copy requires a D2H write-back first;
//             evicting a clean copy is free.
//
// The residency state machine per (handle, device) is therefore
//
//   Absent --H2D--> Clean --device write--> Dirty --D2H write-back--> Clean
//     ^               |  \__evict (free)___________________/ |
//     \_______________/            Dirty --evict--> forbidden until
//                                   write-back makes it Clean
//
// (the full table, with the host side, is in docs/DEVICE_ENGINES.md).
//
// The execution drivers own the authoritative instance: the simulator
// turns bytes_to_fetch into DMA-engine events, the real driver's
// emulated engines (runtime/device_engine.hpp) turn them into throttled
// staging memcpys.  Model-based schedulers (dmda) read the directory to
// estimate transfer penalties, concurrently with engine threads mutating
// it, so every bit operation is a relaxed atomic: readers see *a* recent
// placement (estimates tolerate staleness) and writers never tear.
#pragma once

#include <atomic>
#include <memory>
#include <vector>

#include "common/error.hpp"
#include "symbolic/structure.hpp"

namespace spx {

class DataDirectory {
 public:
  static constexpr int kHost = -1;

  DataDirectory(const SymbolicStructure& st, Factorization kind,
                std::size_t scalar_bytes, int num_gpus)
      : st_(&st), num_gpus_(num_gpus) {
    const int arrays = (kind == Factorization::LU) ? 2 : 1;
    bytes_.resize(static_cast<std::size_t>(st.num_panels()));
    for (index_t p = 0; p < st.num_panels(); ++p) {
      bytes_[p] = static_cast<double>(st.panels[p].nrows) *
                  st.panels[p].width() * scalar_bytes * arrays;
    }
    valid_ = std::make_unique<std::atomic<std::uint32_t>[]>(bytes_.size());
    dirty_ = std::make_unique<std::atomic<std::uint32_t>[]>(bytes_.size());
    reset();
  }

  void reset() {
    // Everything starts valid on the host only, nothing dirty.
    for (std::size_t p = 0; p < bytes_.size(); ++p) {
      valid_[p].store(1u, std::memory_order_relaxed);
      dirty_[p].store(0u, std::memory_order_relaxed);
    }
  }

  int num_gpus() const { return num_gpus_; }
  double panel_bytes(index_t p) const { return bytes_[p]; }

  bool valid_on(index_t p, int loc) const {
    return (valid_[p].load(std::memory_order_relaxed) >> bit(loc)) & 1u;
  }

  /// True when the copy at `loc` is the sole authoritative instance (a
  /// device wrote it); eviction then requires a write-back first.
  bool dirty_on(index_t p, int loc) const {
    return (dirty_[p].load(std::memory_order_relaxed) >> bit(loc)) & 1u;
  }

  /// Bytes that must move for panel p to be readable at `loc`.
  double bytes_to_fetch(index_t p, int loc) const {
    return valid_on(p, loc) ? 0.0 : bytes_[p];
  }

  /// Records that a copy of p now exists at `loc` (after a transfer).
  void add_copy(index_t p, int loc) {
    valid_[p].fetch_or(1u << bit(loc), std::memory_order_relaxed);
  }

  /// Records a write to p at `loc`: all other copies become invalid, and
  /// a device writer's copy becomes dirty (host writes are never dirty --
  /// host memory is the home location).
  void note_write(index_t p, int loc) {
    valid_[p].store(1u << bit(loc), std::memory_order_relaxed);
    dirty_[p].store(loc == kHost ? 0u : 1u << bit(loc),
                    std::memory_order_relaxed);
  }

  /// Records a completed write-back: the copy at `loc` is no longer the
  /// sole authoritative instance (the caller add_copy'd the host).
  void mark_clean(index_t p, int loc) {
    dirty_[p].fetch_and(~(1u << bit(loc)), std::memory_order_relaxed);
  }

  /// Drops the copy at `loc` (LRU eviction); another valid copy must
  /// exist elsewhere (write back a dirty copy before dropping it).
  void drop_copy(index_t p, int loc) {
    const std::uint32_t left =
        valid_[p].fetch_and(~(1u << bit(loc)), std::memory_order_relaxed) &
        ~(1u << bit(loc));
    SPX_ASSERT(left != 0 && "evicted the last copy of a panel");
  }

  /// A location currently holding a valid copy (preferring the host).
  int source_of(index_t p) const {
    if (valid_on(p, kHost)) return kHost;
    for (int g = 0; g < num_gpus_; ++g) {
      if (valid_on(p, g)) return g;
    }
    SPX_ASSERT(false && "panel has no valid copy");
    return kHost;
  }

  /// Total bytes resident on a GPU (for memory-pressure accounting).
  double resident_bytes(int gpu) const {
    double total = 0.0;
    for (std::size_t p = 0; p < bytes_.size(); ++p) {
      if (valid_on(static_cast<index_t>(p), gpu)) total += bytes_[p];
    }
    return total;
  }

 private:
  static unsigned bit(int loc) { return static_cast<unsigned>(loc + 1); }

  const SymbolicStructure* st_;
  int num_gpus_;
  std::vector<double> bytes_;
  std::unique_ptr<std::atomic<std::uint32_t>[]> valid_;
  std::unique_ptr<std::atomic<std::uint32_t>[]> dirty_;
};

}  // namespace spx
