#include "runtime/native_scheduler.hpp"

#include "obs/obs.hpp"

#include <algorithm>
#include <queue>

#include "dist/mapping.hpp"

namespace spx {

NativeScheduler::NativeScheduler(const TaskTable& table,
                                 const Machine& machine,
                                 const TaskCosts& costs,
                                 NativeOptions options)
    : table_(&table),
      machine_(&machine),
      costs_(&costs),
      options_(options) {
  SPX_CHECK_ARG(machine.num_gpus() == 0,
                "the native PASTIX scheduler is CPU-only");
  compute_static_schedule();
  const auto np = static_cast<std::size_t>(table.num_panels());
  shards_ = std::make_unique<Shard[]>(static_queue_.size());
  remaining_in_.configure(np);
  factor_taken_ = std::make_unique<std::atomic<char>[]>(np);
  factor_done_ = std::make_unique<std::atomic<char>[]>(np);
  target_busy_ = std::make_unique<std::atomic<char>[]>(np);
  counters_.configure(machine.num_resources());
  reset();
}

void NativeScheduler::compute_static_schedule() {
  const SymbolicStructure& st = table_->structure();
  const index_t np = table_->num_panels();
  const int nw = machine_->num_cpus();

  if (options_.mapping == NativeOptions::Mapping::Proportional) {
    // Proportional subtree mapping: per-worker queues in ascending panel
    // order (the subtree-local topological order).
    const dist::Mapping map =
        dist::proportional_mapping(st, *costs_, nw);
    static_queue_.assign(static_cast<std::size_t>(nw), {});
    for (index_t p = 0; p < np; ++p) {
      static_queue_[map.owner[p]].push_back(p);
    }
    static_makespan_ = 0.0;
    for (const double w : map.node_work) {
      static_makespan_ = std::max(static_makespan_, w);
    }
    return;
  }

  // 1D task duration: panel task + all its updates (the analyze-phase
  // cost model works at 1D granularity, like PASTIX's).
  std::vector<double> duration(static_cast<std::size_t>(np));
  for (index_t p = 0; p < np; ++p) {
    double d = costs_->panel_seconds(p, ResourceKind::Cpu);
    for (index_t e = 0; e < static_cast<index_t>(st.targets[p].size());
         ++e) {
      d += costs_->update_seconds(p, e, ResourceKind::Cpu);
    }
    duration[p] = d;
  }
  // Bottom levels on the 1D DAG for priority.
  std::vector<double> level(static_cast<std::size_t>(np), 0.0);
  for (index_t p = np - 1; p >= 0; --p) {
    double succ = 0.0;
    for (const UpdateEdge& e : st.targets[p]) {
      succ = std::max(succ, level[e.dst]);
    }
    level[p] = duration[p] + succ;
  }

  // List scheduling: repeatedly map the highest-priority ready task onto
  // the worker where it can start first.
  std::vector<index_t> remaining = st.in_degree;
  std::vector<double> ready_time(static_cast<std::size_t>(np), 0.0);
  std::vector<double> avail(static_cast<std::size_t>(nw), 0.0);
  struct Cand {
    double level;
    index_t panel;
    bool operator<(const Cand& o) const {
      return level < o.level || (level == o.level && panel < o.panel);
    }
  };
  std::priority_queue<Cand> ready;
  for (index_t p = 0; p < np; ++p) {
    if (remaining[p] == 0) ready.push({level[p], p});
  }
  static_queue_.assign(static_cast<std::size_t>(nw), {});
  static_makespan_ = 0.0;
  index_t scheduled = 0;
  while (!ready.empty()) {
    const index_t p = ready.top().panel;
    ready.pop();
    ++scheduled;
    int best = 0;
    double best_start = std::max(avail[0], ready_time[p]);
    for (int w = 1; w < nw; ++w) {
      const double s = std::max(avail[w], ready_time[p]);
      if (s < best_start) {
        best_start = s;
        best = w;
      }
    }
    const double finish = best_start + duration[p];
    avail[best] = finish;
    static_makespan_ = std::max(static_makespan_, finish);
    static_queue_[best].push_back(p);
    for (const UpdateEdge& e : st.targets[p]) {
      ready_time[e.dst] = std::max(ready_time[e.dst], finish);
      if (--remaining[e.dst] == 0) ready.push({level[e.dst], e.dst});
    }
  }
  SPX_ASSERT(scheduled == np);
}

void NativeScheduler::reset() {
  // Reset runs while the scheduler is quiescent (no workers attached).
  SPX_OBS(obs::MetricsRegistry::global()
              .counter("spx_scheduler_resets_total",
                       "Scheduler reset()s (one per driver run)",
                       {{"scheduler", "native"}})
              .inc());
  const SymbolicStructure& st = table_->structure();
  const index_t np = table_->num_panels();
  remaining_in_.assign(st.in_degree);
  for (std::size_t w = 0; w < static_queue_.size(); ++w) {
    shards_[w].head = 0;
    shards_[w].unconsumed.store(
        static_cast<index_t>(static_queue_[w].size()),
        std::memory_order_relaxed);
  }
  for (index_t p = 0; p < np; ++p) {
    factor_taken_[p].store(0, std::memory_order_relaxed);
    factor_done_[p].store(0, std::memory_order_relaxed);
    target_busy_[p].store(0, std::memory_order_relaxed);
  }
  pending_edges_.assign(static_cast<std::size_t>(np), {});
  for (index_t p = 0; p < np; ++p) {
    auto& edges = pending_edges_[p];
    edges.resize(st.targets[p].size());
    for (index_t e = 0; e < static_cast<index_t>(edges.size()); ++e) {
      edges[e] = e;
    }
  }
  completed_.store(0, std::memory_order_relaxed);
  counters_.clear();
}

bool NativeScheduler::pop_from(int w, Task* out) {
  const SymbolicStructure& st = table_->structure();
  Shard& shard = shards_[w];
  auto& q = static_queue_[static_cast<std::size_t>(w)];
  // Advance past fully-dispatched panels.
  while (shard.head < q.size()) {
    const index_t p = q[shard.head];
    if (factor_done_[p].load(std::memory_order_acquire) &&
        pending_edges_[p].empty()) {
      ++shard.head;
      shard.unconsumed.fetch_sub(1, std::memory_order_relaxed);
    } else {
      break;
    }
  }
  for (std::size_t i = shard.head; i < q.size(); ++i) {
    const index_t p = q[i];
    if (!factor_done_[p].load(std::memory_order_acquire)) {
      // The acquire load on remaining_in_ orders the predecessor updates'
      // writes to the panel data before the factor kernel reads them.
      if (remaining_in_.load(static_cast<std::size_t>(p)) == 0 &&
          !factor_taken_[p].exchange(1, std::memory_order_acq_rel)) {
        *out = {TaskKind::Panel, p, -1};
        return true;
      }
      continue;  // factor pending elsewhere or not ready yet
    }
    // Factor done: dispatch the first update whose target is free.
    auto& edges = pending_edges_[p];
    for (std::size_t k = 0; k < edges.size(); ++k) {
      const index_t e = edges[k];
      const index_t dst = st.targets[p][e].dst;
      if (target_busy_[dst].exchange(1, std::memory_order_acq_rel)) {
        continue;  // another update currently owns dst
      }
      edges.erase(edges.begin() + static_cast<std::ptrdiff_t>(k));
      *out = {TaskKind::Update, p, e};
      return true;
    }
  }
  return false;
}

bool NativeScheduler::try_pop(int resource, Task* out) {
  SPX_DEBUG_ASSERT(machine_->resource(resource).kind == ResourceKind::Cpu);
  WorkerCounters& c = counters_.at(resource);
  const int nw = static_cast<int>(static_queue_.size());
  const int self = resource >= 0 && resource < nw ? resource : 0;
  c.depth_sum += static_cast<double>(
      shards_[self].unconsumed.load(std::memory_order_relaxed));
  ++c.depth_samples;
  {
    TimedLock lock(shards_[self].m, c.lock_wait);
    if (pop_from(self, out)) {
      ++c.pops;
      return true;
    }
  }
  // Steal from the worker with the most unconsumed panels; the backlog
  // hints are atomics, so only the chosen victim's shard gets locked.
  std::vector<StealVictim> victims;
  for (int w = 0; w < nw; ++w) {
    if (w == self) continue;
    const index_t rem =
        shards_[w].unconsumed.load(std::memory_order_relaxed);
    if (rem > 0) victims.push_back({rem, w});
  }
  sort_steal_victims(victims);
  for (const StealVictim& v : victims) {
    TimedLock lock(shards_[v.worker].m, c.lock_wait);
    if (pop_from(v.worker, out)) {
      ++c.steals;
      ++c.pops;
      return true;
    }
  }
  return false;
}

void NativeScheduler::on_complete(const Task& task, int /*resource*/) {
  // Entirely lock-free local release: publish the factor (release store)
  // or clear the commute claim and drop the dependency counter.  Workers
  // rediscover dispatchable units by scanning under their own shard lock.
  if (task.kind == TaskKind::Panel) {
    factor_done_[task.panel].store(1, std::memory_order_release);
  } else {
    const index_t dst =
        table_->structure().targets[task.panel][task.edge].dst;
    target_busy_[dst].store(0, std::memory_order_release);
    remaining_in_.release_one(static_cast<std::size_t>(dst));
  }
  completed_.fetch_add(1, std::memory_order_acq_rel);
}

bool NativeScheduler::finished() const {
  return completed_.load(std::memory_order_acquire) == table_->num_tasks();
}

index_t NativeScheduler::steal_count() const {
  const ContentionStats c = counters_.snapshot();
  return c.total_steals();
}

}  // namespace spx
