#include "runtime/native_scheduler.hpp"

#include <algorithm>
#include <queue>

#include "dist/mapping.hpp"

namespace spx {

NativeScheduler::NativeScheduler(const TaskTable& table,
                                 const Machine& machine,
                                 const TaskCosts& costs,
                                 NativeOptions options)
    : table_(&table),
      machine_(&machine),
      costs_(&costs),
      options_(options) {
  SPX_CHECK_ARG(machine.num_gpus() == 0,
                "the native PASTIX scheduler is CPU-only");
  compute_static_schedule();
  reset();
}

void NativeScheduler::compute_static_schedule() {
  const SymbolicStructure& st = table_->structure();
  const index_t np = table_->num_panels();
  const int nw = machine_->num_cpus();

  if (options_.mapping == NativeOptions::Mapping::Proportional) {
    // Proportional subtree mapping: per-worker queues in ascending panel
    // order (the subtree-local topological order).
    const dist::Mapping map =
        dist::proportional_mapping(st, *costs_, nw);
    static_queue_.assign(static_cast<std::size_t>(nw), {});
    for (index_t p = 0; p < np; ++p) {
      static_queue_[map.owner[p]].push_back(p);
    }
    static_makespan_ = 0.0;
    for (const double w : map.node_work) {
      static_makespan_ = std::max(static_makespan_, w);
    }
    return;
  }

  // 1D task duration: panel task + all its updates (the analyze-phase
  // cost model works at 1D granularity, like PASTIX's).
  std::vector<double> duration(static_cast<std::size_t>(np));
  for (index_t p = 0; p < np; ++p) {
    double d = costs_->panel_seconds(p, ResourceKind::Cpu);
    for (index_t e = 0; e < static_cast<index_t>(st.targets[p].size());
         ++e) {
      d += costs_->update_seconds(p, e, ResourceKind::Cpu);
    }
    duration[p] = d;
  }
  // Bottom levels on the 1D DAG for priority.
  std::vector<double> level(static_cast<std::size_t>(np), 0.0);
  for (index_t p = np - 1; p >= 0; --p) {
    double succ = 0.0;
    for (const UpdateEdge& e : st.targets[p]) {
      succ = std::max(succ, level[e.dst]);
    }
    level[p] = duration[p] + succ;
  }

  // List scheduling: repeatedly map the highest-priority ready task onto
  // the worker where it can start first.
  std::vector<index_t> remaining = st.in_degree;
  std::vector<double> ready_time(static_cast<std::size_t>(np), 0.0);
  std::vector<double> avail(static_cast<std::size_t>(nw), 0.0);
  struct Cand {
    double level;
    index_t panel;
    bool operator<(const Cand& o) const {
      return level < o.level || (level == o.level && panel < o.panel);
    }
  };
  std::priority_queue<Cand> ready;
  for (index_t p = 0; p < np; ++p) {
    if (remaining[p] == 0) ready.push({level[p], p});
  }
  static_queue_.assign(static_cast<std::size_t>(nw), {});
  static_makespan_ = 0.0;
  index_t scheduled = 0;
  while (!ready.empty()) {
    const index_t p = ready.top().panel;
    ready.pop();
    ++scheduled;
    int best = 0;
    double best_start = std::max(avail[0], ready_time[p]);
    for (int w = 1; w < nw; ++w) {
      const double s = std::max(avail[w], ready_time[p]);
      if (s < best_start) {
        best_start = s;
        best = w;
      }
    }
    const double finish = best_start + duration[p];
    avail[best] = finish;
    static_makespan_ = std::max(static_makespan_, finish);
    static_queue_[best].push_back(p);
    for (const UpdateEdge& e : st.targets[p]) {
      ready_time[e.dst] = std::max(ready_time[e.dst], finish);
      if (--remaining[e.dst] == 0) ready.push({level[e.dst], e.dst});
    }
  }
  SPX_ASSERT(scheduled == np);
}

void NativeScheduler::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  const SymbolicStructure& st = table_->structure();
  const index_t np = table_->num_panels();
  remaining_in_ = st.in_degree;
  head_.assign(static_queue_.size(), 0);
  factor_taken_.assign(static_cast<std::size_t>(np), 0);
  factor_done_.assign(static_cast<std::size_t>(np), 0);
  pending_edges_.assign(static_cast<std::size_t>(np), {});
  for (index_t p = 0; p < np; ++p) {
    auto& edges = pending_edges_[p];
    edges.resize(st.targets[p].size());
    for (index_t e = 0; e < static_cast<index_t>(edges.size()); ++e) {
      edges[e] = e;
    }
  }
  target_busy_.assign(static_cast<std::size_t>(np), 0);
  completed_ = 0;
  steals_ = 0;
}

bool NativeScheduler::pop_from(int w, Task* out) {
  const SymbolicStructure& st = table_->structure();
  auto& q = static_queue_[w];
  // Advance past fully-dispatched panels.
  while (head_[w] < q.size()) {
    const index_t p = q[head_[w]];
    if (factor_done_[p] && pending_edges_[p].empty()) {
      ++head_[w];
    } else {
      break;
    }
  }
  for (std::size_t i = head_[w]; i < q.size(); ++i) {
    const index_t p = q[i];
    if (!factor_done_[p]) {
      if (!factor_taken_[p] && remaining_in_[p] == 0) {
        factor_taken_[p] = 1;
        *out = {TaskKind::Panel, p, -1};
        return true;
      }
      continue;  // factor pending elsewhere or not ready yet
    }
    // Factor done: dispatch the first update whose target is free.
    auto& edges = pending_edges_[p];
    for (std::size_t k = 0; k < edges.size(); ++k) {
      const index_t e = edges[k];
      const index_t dst = st.targets[p][e].dst;
      if (target_busy_[dst]) continue;
      target_busy_[dst] = 1;
      edges.erase(edges.begin() + static_cast<std::ptrdiff_t>(k));
      *out = {TaskKind::Update, p, e};
      return true;
    }
  }
  return false;
}

bool NativeScheduler::try_pop(int resource, Task* out) {
  SPX_DEBUG_ASSERT(machine_->resource(resource).kind == ResourceKind::Cpu);
  std::lock_guard<std::mutex> lock(mutex_);
  if (pop_from(resource, out)) return true;
  // Steal from the worker with the most unconsumed panels.
  std::vector<int> victims;
  for (int w = 0; w < static_cast<int>(static_queue_.size()); ++w) {
    if (w != resource && head_[w] < static_queue_[w].size()) {
      victims.push_back(w);
    }
  }
  std::sort(victims.begin(), victims.end(), [&](int a, int b) {
    return static_queue_[a].size() - head_[a] >
           static_queue_[b].size() - head_[b];
  });
  for (const int v : victims) {
    if (pop_from(v, out)) {
      ++steals_;
      return true;
    }
  }
  return false;
}

void NativeScheduler::on_complete(const Task& task, int /*resource*/) {
  std::lock_guard<std::mutex> lock(mutex_);
  const SymbolicStructure& st = table_->structure();
  if (task.kind == TaskKind::Panel) {
    factor_done_[task.panel] = 1;
  } else {
    const index_t dst = st.targets[task.panel][task.edge].dst;
    target_busy_[dst] = 0;
    --remaining_in_[dst];
    SPX_DEBUG_ASSERT(remaining_in_[dst] >= 0);
  }
  ++completed_;
}

bool NativeScheduler::finished() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return completed_ == table_->num_tasks();
}

}  // namespace spx
