// Resource enumeration shared by schedulers and drivers.
//
// Resources are: CPU workers first, then one resource per GPU *stream*
// (PaRSEC-style multi-stream devices expose several concurrent kernel
// slots; StarPU-style single-stream devices expose one).  The StarPU
// convention of dedicating one CPU core per GPU (paper §V-C: "when a GPU
// is used, a CPU worker is removed") is expressed by constructing the
// Machine with fewer CPU workers.
//
// The same dense resource ids index the real driver's device engines
// (runtime/device_engine.hpp): ids [0, num_cpus) belong to engine 0 (the
// CPU pool / host memory space), and the streams_per_gpu ids of device g
// belong to engine g+1.  The simulator reuses the identical numbering, so
// a placement vector from a real run and one from sim::simulate are
// directly comparable element-wise (docs/DEVICE_ENGINES.md).
#pragma once

#include <vector>

#include "common/error.hpp"
#include "runtime/task.hpp"

namespace spx {

/// One schedulable execution slot: a CPU worker or one GPU stream.
struct Resource {
  ResourceKind kind = ResourceKind::Cpu;
  int gpu = -1;     ///< device index for GpuStream resources
  int stream = -1;  ///< stream index within the device
};

/// Immutable description of the execution platform: how many CPU workers
/// and GPU streams exist and the dense resource-id numbering shared by
/// schedulers, drivers and RunStats vectors.
class Machine {
 public:
  /// `num_cpus` CPU workers followed by `num_gpus * streams_per_gpu`
  /// GPU-stream resources; throws InvalidArgument on an empty machine.
  Machine(int num_cpus, int num_gpus = 0, int streams_per_gpu = 1)
      : num_cpus_(num_cpus),
        num_gpus_(num_gpus),
        streams_per_gpu_(streams_per_gpu) {
    SPX_CHECK_ARG(num_cpus >= 0 && num_gpus >= 0 && streams_per_gpu >= 1,
                  "bad machine shape");
    SPX_CHECK_ARG(num_cpus + num_gpus > 0, "machine needs a resource");
    for (int c = 0; c < num_cpus; ++c) {
      resources_.push_back({ResourceKind::Cpu, -1, -1});
    }
    for (int g = 0; g < num_gpus; ++g) {
      for (int s = 0; s < streams_per_gpu; ++s) {
        resources_.push_back({ResourceKind::GpuStream, g, s});
      }
    }
  }

  int num_cpus() const { return num_cpus_; }
  int num_gpus() const { return num_gpus_; }
  int streams_per_gpu() const { return streams_per_gpu_; }
  /// Total schedulable slots: num_cpus + num_gpus * streams_per_gpu.
  int num_resources() const { return static_cast<int>(resources_.size()); }
  /// Resource behind dense id `r`; CPU workers occupy ids [0, num_cpus).
  const Resource& resource(int r) const { return resources_[r]; }

 private:
  int num_cpus_;
  int num_gpus_;
  int streams_per_gpu_;
  std::vector<Resource> resources_;
};

}  // namespace spx
