#include "runtime/task.hpp"

#include <algorithm>

namespace spx {

TaskTable::TaskTable(const SymbolicStructure& st, Factorization kind)
    : st_(&st), kind_(kind), np_(st.num_panels()) {
  update_base_.resize(static_cast<std::size_t>(np_) + 1);
  index_t acc = 0;
  for (index_t p = 0; p < np_; ++p) {
    update_base_[p] = acc;
    acc += static_cast<index_t>(st.targets[p].size());
  }
  update_base_[np_] = acc;
  ntasks_ = np_ + acc;
  flops_.resize(static_cast<std::size_t>(ntasks_));
  for (index_t p = 0; p < np_; ++p) {
    flops_[p] = st.panel_task_flops(p, kind);
    for (index_t e = 0; e < static_cast<index_t>(st.targets[p].size());
         ++e) {
      flops_[np_ + update_base_[p] + e] =
          st.update_task_flops(p, st.targets[p][e], kind);
    }
  }
}

std::vector<double> TaskTable::bottom_levels(const TaskCosts& costs) const {
  // DAG edges: panel(p) -> update(p, e) -> panel(target).  Panels are
  // topologically ordered by id, so one reverse sweep suffices.
  std::vector<double> level(static_cast<std::size_t>(ntasks_), 0.0);
  const SymbolicStructure& st = *st_;
  for (index_t p = np_ - 1; p >= 0; --p) {
    // Updates of p finish before their target panel's task.
    double panel_succ = 0.0;
    for (index_t e = 0; e < static_cast<index_t>(st.targets[p].size());
         ++e) {
      const index_t uid = np_ + update_base_[p] + e;
      const double dur = costs.update_seconds(p, e, ResourceKind::Cpu);
      level[uid] = dur + level[st.targets[p][e].dst];
      panel_succ = std::max(panel_succ, level[uid]);
    }
    level[p] = costs.panel_seconds(p, ResourceKind::Cpu) + panel_succ;
  }
  return level;
}

}  // namespace spx
