// Execution statistics shared by the simulated and real drivers.
#pragma once

#include <algorithm>
#include <string>
#include <vector>

#include "common/factor_quality.hpp"
#include "common/types.hpp"

namespace spx {

/// Per-worker contention counters from a real execution: where worker
/// time goes besides compute.  Vectors are indexed by resource id; any of
/// them may be empty when the producing scheduler or driver does not
/// measure that quantity.
struct ContentionStats {
  std::vector<double> lock_wait;      ///< seconds blocked on scheduler locks
  std::vector<double> idle_wait;      ///< seconds parked waiting for work
  std::vector<double> stage_wait;     ///< seconds blocked on data staging
                                      ///< (device-engine transfers)
  std::vector<index_t> steals;        ///< tasks taken from another worker
  std::vector<index_t> pops;          ///< successful try_pop calls
  std::vector<index_t> depth_samples; ///< queue-depth sample count
  std::vector<double> depth_sum;      ///< sum of sampled own-queue depths

  double total_lock_wait() const { return sum(lock_wait); }
  double total_idle_wait() const { return sum(idle_wait); }
  double total_stage_wait() const { return sum(stage_wait); }
  index_t total_steals() const { return sum_i(steals); }
  index_t total_pops() const { return sum_i(pops); }
  double avg_queue_depth() const {
    const double n = static_cast<double>(sum_i(depth_samples));
    return n > 0 ? sum(depth_sum) / n : 0.0;
  }
  /// Fraction of total worker-seconds spent blocked on scheduler locks.
  double lock_wait_share(double makespan) const {
    return share(total_lock_wait(), makespan, lock_wait.size());
  }
  /// Fraction of total worker-seconds spent parked with no runnable task.
  double idle_share(double makespan) const {
    return share(total_idle_wait(), makespan, idle_wait.size());
  }

 private:
  static double sum(const std::vector<double>& v) {
    double total = 0.0;
    for (const double x : v) total += x;
    return total;
  }
  static index_t sum_i(const std::vector<index_t>& v) {
    index_t total = 0;
    for (const index_t x : v) total += x;
    return total;
  }
  static double share(double total, double makespan, std::size_t workers) {
    if (makespan <= 0 || workers == 0) return 0.0;
    return total / (makespan * static_cast<double>(workers));
  }
};

/// Cost-model accuracy observed during a real run: one signed
/// (predicted - actual) / actual sample per executed panel/update task.
/// Populated by the real driver when RealDriverOptions::error_model is
/// set (the perfmodel pipeline reports these per kernel class; see
/// docs/PERF_MODELS.md).  Empty when no model was attached.
struct ModelErrorStats {
  std::vector<double> panel_rel;   ///< signed panel-task relative errors
  std::vector<double> update_rel;  ///< signed update-task relative errors

  /// True when no samples were collected (no model attached to the run).
  bool empty() const { return panel_rel.empty() && update_rel.empty(); }
  /// Median of a sample vector (0 when empty); by value, it sorts a copy.
  static double median(std::vector<double> v) {
    if (v.empty()) return 0.0;
    const std::size_t mid = v.size() / 2;
    std::nth_element(v.begin(), v.begin() + mid, v.end());
    return v[mid];
  }
  /// Median |error|: the headline accuracy figure per task class.
  static double median_abs(std::vector<double> v) {
    for (double& x : v) x = x < 0 ? -x : x;
    return median(std::move(v));
  }
  double median_panel() const { return median_abs(panel_rel); }
  double median_update() const { return median_abs(update_rel); }
  /// Median *signed* error: + means the model over-predicts durations.
  double bias_panel() const { return median(panel_rel); }
  double bias_update() const { return median(update_rel); }
};

/// Per-run execution statistics; `makespan`/`busy` are virtual seconds
/// when produced by the simulator, wall-clock otherwise.
struct RunStats : obs::Exportable {
  double makespan = 0.0;        ///< seconds (virtual for the simulator)
  double gflops = 0.0;          ///< total factorization flops / makespan
  std::vector<double> busy;     ///< per-resource busy seconds
  double bytes_h2d = 0.0;       ///< host-to-device transfer volume
  double bytes_d2h = 0.0;       ///< device-to-host transfer volume
  index_t transfers_h2d = 0;    ///< staging transfers, host-to-device
  index_t transfers_d2h = 0;    ///< staging transfers, device-to-host
  index_t tasks_cpu = 0;        ///< tasks executed on CPU workers
  index_t tasks_gpu = 0;        ///< tasks executed on GPU streams
  index_t cache_hits = 0;       ///< cache-model hits (simulator only)
  index_t cache_queries = 0;    ///< cache-model lookups (simulator only)
  index_t gpu_evictions = 0;    ///< LRU evictions under device memory
                                ///< pressure (simulator and emulated
                                ///< device engines)
  ContentionStats contention;   ///< lock/idle/steal counters (real driver)
  ModelErrorStats model_error;  ///< cost-model accuracy (real driver, only
                                ///< when a model is attached)
  FactorQuality quality;        ///< static-pivot perturbation accounting
                                ///< (filled by Solver::factorize)
  std::string kernel_isa;       ///< dense-kernel ISA tier the run dispatched
                                ///< to ("generic"/"neon"/"avx2"/"avx512";
                                ///< empty when no kernels ran)
  bool kernel_blas = false;     ///< true when large GEMMs delegated to an
                                ///< external CBLAS (-DSPX_WITH_BLAS)

  /// Mean per-resource utilization: busy seconds / makespan, in [0, 1].
  double busy_fraction() const {
    if (busy.empty() || makespan <= 0) return 0.0;
    double total = 0.0;
    for (const double b : busy) total += b;
    return total / (makespan * static_cast<double>(busy.size()));
  }

  /// JSON schema (makespan, gflops, task counts, contention and
  /// model-error summaries) -- the per-request stats surface the solve
  /// service exports (src/service/).  Stable golden keys.
  void export_json(obs::JsonWriter& w) const override;
};

/// Compatibility shim over the obs::Exportable path (same keys).
json::Value to_json(const RunStats& stats);

}  // namespace spx
