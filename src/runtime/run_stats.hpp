// Execution statistics shared by the simulated and real drivers.
#pragma once

#include <vector>

#include "common/types.hpp"

namespace spx {

/// Per-worker contention counters from a real execution: where worker
/// time goes besides compute.  Vectors are indexed by resource id; any of
/// them may be empty when the producing scheduler or driver does not
/// measure that quantity.
struct ContentionStats {
  std::vector<double> lock_wait;      ///< seconds blocked on scheduler locks
  std::vector<double> idle_wait;      ///< seconds parked waiting for work
  std::vector<index_t> steals;        ///< tasks taken from another worker
  std::vector<index_t> pops;          ///< successful try_pop calls
  std::vector<index_t> depth_samples; ///< queue-depth sample count
  std::vector<double> depth_sum;      ///< sum of sampled own-queue depths

  double total_lock_wait() const { return sum(lock_wait); }
  double total_idle_wait() const { return sum(idle_wait); }
  index_t total_steals() const { return sum_i(steals); }
  index_t total_pops() const { return sum_i(pops); }
  double avg_queue_depth() const {
    const double n = static_cast<double>(sum_i(depth_samples));
    return n > 0 ? sum(depth_sum) / n : 0.0;
  }
  /// Fraction of total worker-seconds spent blocked on scheduler locks.
  double lock_wait_share(double makespan) const {
    return share(total_lock_wait(), makespan, lock_wait.size());
  }
  /// Fraction of total worker-seconds spent parked with no runnable task.
  double idle_share(double makespan) const {
    return share(total_idle_wait(), makespan, idle_wait.size());
  }

 private:
  static double sum(const std::vector<double>& v) {
    double total = 0.0;
    for (const double x : v) total += x;
    return total;
  }
  static index_t sum_i(const std::vector<index_t>& v) {
    index_t total = 0;
    for (const index_t x : v) total += x;
    return total;
  }
  static double share(double total, double makespan, std::size_t workers) {
    if (makespan <= 0 || workers == 0) return 0.0;
    return total / (makespan * static_cast<double>(workers));
  }
};

struct RunStats {
  double makespan = 0.0;        ///< seconds (virtual for the simulator)
  double gflops = 0.0;          ///< total factorization flops / makespan
  std::vector<double> busy;     ///< per-resource busy seconds
  double bytes_h2d = 0.0;       ///< host-to-device transfer volume
  double bytes_d2h = 0.0;
  index_t tasks_cpu = 0;
  index_t tasks_gpu = 0;
  index_t cache_hits = 0;       ///< cache-model hits (simulator only)
  index_t cache_queries = 0;
  index_t gpu_evictions = 0;    ///< LRU evictions under device memory
                                ///< pressure (simulator only)
  ContentionStats contention;   ///< lock/idle/steal counters (real driver)

  double busy_fraction() const {
    if (busy.empty() || makespan <= 0) return 0.0;
    double total = 0.0;
    for (const double b : busy) total += b;
    return total / (makespan * static_cast<double>(busy.size()));
  }
};

}  // namespace spx
