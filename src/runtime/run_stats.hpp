// Execution statistics shared by the simulated and real drivers.
#pragma once

#include <vector>

#include "common/types.hpp"

namespace spx {

struct RunStats {
  double makespan = 0.0;        ///< seconds (virtual for the simulator)
  double gflops = 0.0;          ///< total factorization flops / makespan
  std::vector<double> busy;     ///< per-resource busy seconds
  double bytes_h2d = 0.0;       ///< host-to-device transfer volume
  double bytes_d2h = 0.0;
  index_t tasks_cpu = 0;
  index_t tasks_gpu = 0;
  index_t cache_hits = 0;       ///< cache-model hits (simulator only)
  index_t cache_queries = 0;
  index_t gpu_evictions = 0;    ///< LRU evictions under device memory
                                ///< pressure (simulator only)

  double busy_fraction() const {
    if (busy.empty() || makespan <= 0) return 0.0;
    double total = 0.0;
    for (const double b : busy) total += b;
    return total / (makespan * static_cast<double>(busy.size()));
  }
};

}  // namespace spx
