// Global-mutex serialization wrapper around any Scheduler.
//
// Every try_pop / on_complete / peek_prefetch / finished goes through one
// lock, reproducing the pre-sharding runtime layer.  It exists as a
// *measurable baseline*: bench_fig2_cpu_scaling runs each scheduler both
// bare and wrapped, and the difference in per-worker lock-wait share is
// the contention the sharded design removed.
#pragma once

#include <mutex>
#include <string>

#include "runtime/scheduler.hpp"
#include "runtime/worker_queues.hpp"

namespace spx {

class SerializedScheduler : public Scheduler {
 public:
  SerializedScheduler(Scheduler& inner, int num_resources)
      : inner_(&inner) {
    counters_.configure(num_resources);
  }

  void reset() override {
    std::lock_guard<std::mutex> lock(mutex_);
    inner_->reset();
    counters_.clear();
  }

  bool try_pop(int resource, Task* out) override {
    WorkerCounters& c = counters_.at(resource);
    TimedLock lock(mutex_, c.lock_wait);
    const bool got = inner_->try_pop(resource, out);
    if (got) ++c.pops;
    return got;
  }

  void on_complete(const Task& task, int resource) override {
    TimedLock lock(mutex_, counters_.at(resource).lock_wait);
    inner_->on_complete(task, resource);
  }

  bool finished() const override {
    std::lock_guard<std::mutex> lock(mutex_);
    return inner_->finished();
  }

  std::string name() const override {
    return inner_->name() + "+globallock";
  }

  bool peek_prefetch(int resource, Task* out) override {
    TimedLock lock(mutex_, counters_.at(resource).lock_wait);
    return inner_->peek_prefetch(resource, out);
  }

  const SubtreeGroups* subtree_groups() const override {
    return inner_->subtree_groups();
  }

  ContentionStats contention() const override {
    // Inner waits (uncontended under the global lock) plus the wrapper's
    // own blocking, which is where the serialization cost shows up.
    ContentionStats c = inner_->contention();
    const ContentionStats mine = counters_.snapshot();
    if (c.lock_wait.size() < mine.lock_wait.size()) {
      c.lock_wait.resize(mine.lock_wait.size(), 0.0);
    }
    for (std::size_t i = 0; i < mine.lock_wait.size(); ++i) {
      c.lock_wait[i] += mine.lock_wait[i];
    }
    if (c.pops.empty()) c.pops = mine.pops;
    return c;
  }

 private:
  Scheduler* inner_;
  mutable std::mutex mutex_;
  CounterBank counters_;
};

}  // namespace spx
