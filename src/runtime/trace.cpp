#include "runtime/trace.hpp"

#include <cstring>
#include <fstream>
#include <ostream>

#include "common/error.hpp"
#include "obs/export.hpp"

namespace spx {

std::string json_escape(std::string_view s) { return obs::json_escape(s); }

namespace {

constexpr const char* kWorkerTrack = "worker-";
constexpr const char* kDmaTrack = "dma-";

const char* kind_name(TaskKind k) {
  switch (k) {
    case TaskKind::Panel:
      return "panel";
    case TaskKind::Update:
      return "update";
    case TaskKind::Subtree:
      return "subtree";
  }
  return "?";
}

bool is_transfer(const obs::SpanRecord& s) {
  return std::strcmp(s.track, kDmaTrack) == 0;
}

TaskKind kind_of(const obs::SpanRecord& s) {
  if (std::strcmp(s.name, "panel") == 0) return TaskKind::Panel;
  if (std::strcmp(s.name, "subtree") == 0) return TaskKind::Subtree;
  return TaskKind::Update;
}

}  // namespace

void TraceRecorder::record(int resource, const Task& task, double start,
                           double end) {
  tracer_.record_span(kind_name(task.kind), kWorkerTrack, {}, start, end,
                      resource, task.panel, task.edge);
}

void TraceRecorder::record_transfer(int gpu, index_t panel, double start,
                                    double end) {
  tracer_.record_span("update", kDmaTrack, {}, start, end, gpu, panel, -1);
}

std::size_t TraceRecorder::num_events() const {
  std::size_t n = 0;
  for (const obs::SpanRecord& s : tracer_.snapshot()) {
    if (!is_transfer(s)) ++n;
  }
  return n;
}

std::size_t TraceRecorder::num_transfers() const {
  std::size_t n = 0;
  for (const obs::SpanRecord& s : tracer_.snapshot()) {
    if (is_transfer(s)) ++n;
  }
  return n;
}

std::vector<TraceRecorder::Event> TraceRecorder::events() const {
  std::vector<Event> out;
  for (const obs::SpanRecord& s : tracer_.snapshot()) {
    if (is_transfer(s)) continue;
    out.push_back({s.resource, kind_of(s), static_cast<index_t>(s.arg0),
                   static_cast<index_t>(s.arg1), s.start, s.end});
  }
  return out;
}

void TraceRecorder::write_chrome_json(std::ostream& out) const {
  obs::write_chrome_trace(tracer_.snapshot(), out);
}

void TraceRecorder::write_chrome_json_file(const std::string& path) const {
  std::ofstream out(path);
  SPX_CHECK_ARG(out.good(), "cannot open trace file " + path);
  write_chrome_json(out);
}

}  // namespace spx
