#include "runtime/trace.hpp"

#include <fstream>

#include "common/error.hpp"

namespace spx {
namespace {

const char* kind_name(TaskKind k) {
  switch (k) {
    case TaskKind::Panel:
      return "panel";
    case TaskKind::Update:
      return "update";
    case TaskKind::Subtree:
      return "subtree";
  }
  return "?";
}

void write_event(std::ostream& out, const TraceRecorder::Event& e,
                 const char* row_prefix, bool& first) {
  if (!first) out << ",\n";
  first = false;
  out << "  {\"name\": \"" << kind_name(e.kind) << " p" << e.panel;
  if (e.edge >= 0) out << " e" << e.edge;
  out << "\", \"cat\": \"" << kind_name(e.kind)
      << "\", \"ph\": \"X\", \"pid\": 0, \"tid\": \"" << row_prefix
      << e.resource << "\", \"ts\": " << e.start * 1e6
      << ", \"dur\": " << (e.end - e.start) * 1e6 << "}";
}

}  // namespace

void TraceRecorder::write_chrome_json(std::ostream& out) const {
  std::lock_guard<std::mutex> lock(mutex_);
  out << "{\"traceEvents\": [\n";
  bool first = true;
  for (const Event& e : events_) write_event(out, e, "worker-", first);
  for (const Event& e : transfers_) write_event(out, e, "dma-", first);
  out << "\n]}\n";
}

void TraceRecorder::write_chrome_json_file(const std::string& path) const {
  std::ofstream out(path);
  SPX_CHECK_ARG(out.good(), "cannot open trace file " + path);
  write_chrome_json(out);
}

}  // namespace spx
