#include "runtime/trace.hpp"

#include <cstdio>
#include <fstream>
#include <iomanip>
#include <ios>
#include <ostream>

#include "common/error.hpp"

namespace spx {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char ch : s) {
    switch (ch) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(ch)));
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

namespace {

const char* kind_name(TaskKind k) {
  switch (k) {
    case TaskKind::Panel:
      return "panel";
    case TaskKind::Update:
      return "update";
    case TaskKind::Subtree:
      return "subtree";
  }
  return "?";
}

void write_event(std::ostream& out, const TraceRecorder::Event& e,
                 const char* row_prefix, bool& first) {
  if (!first) out << ",\n";
  first = false;
  std::string name = std::string(kind_name(e.kind)) + " p" +
                     std::to_string(e.panel);
  if (e.edge >= 0) name += " e" + std::to_string(e.edge);
  const std::string tid = row_prefix + std::to_string(e.resource);
  out << "  {\"name\": \"" << json_escape(name) << "\", \"cat\": \""
      << json_escape(kind_name(e.kind))
      << "\", \"ph\": \"X\", \"pid\": 0, \"tid\": \"" << json_escape(tid)
      << "\", \"ts\": " << e.start * 1e6
      << ", \"dur\": " << (e.end - e.start) * 1e6 << "}";
}

}  // namespace

void TraceRecorder::write_chrome_json(std::ostream& out) const {
  std::lock_guard<std::mutex> lock(mutex_);
  // Fixed-point microseconds with three decimals (nanosecond resolution):
  // the default 6-significant-digit float formatting rounds ts to whole
  // milliseconds once a run passes the one-second mark.
  const std::ios_base::fmtflags flags = out.flags();
  const std::streamsize precision = out.precision();
  out << std::fixed << std::setprecision(3);
  out << "{\"traceEvents\": [\n";
  bool first = true;
  for (const Event& e : events_) write_event(out, e, "worker-", first);
  for (const Event& e : transfers_) write_event(out, e, "dma-", first);
  out << "\n]}\n";
  out.flags(flags);
  out.precision(precision);
}

void TraceRecorder::write_chrome_json_file(const std::string& path) const {
  std::ofstream out(path);
  SPX_CHECK_ARG(out.good(), "cannot open trace file " + path);
  write_chrome_json(out);
}

}  // namespace spx
