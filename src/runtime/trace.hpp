// Execution trace recording (both drivers) and chrome-tracing export.
//
// StarPU and PaRSEC ship Paje/FxT tracing for post-mortem Gantt analysis;
// this is the equivalent here.  Both drivers can record every task's
// (resource, kind, panel, start, end); the JSON export loads directly into
// chrome://tracing or Perfetto, one row per resource.
#pragma once

#include <iosfwd>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "runtime/task.hpp"

namespace spx {

/// Escapes `s` for use inside a JSON string literal (quotes, backslashes,
/// and control characters).
std::string json_escape(std::string_view s);

class TraceRecorder {
 public:
  struct Event {
    int resource;
    TaskKind kind;
    index_t panel;
    index_t edge;
    double start;  ///< seconds (virtual for the simulator, wall otherwise)
    double end;
  };

  void record(int resource, const Task& task, double start, double end) {
    std::lock_guard<std::mutex> lock(mutex_);
    events_.push_back({resource, task.kind, task.panel, task.edge, start,
                       end});
  }

  /// Also usable for transfer events (resource = DMA engine row).
  void record_transfer(int gpu, index_t panel, double start, double end) {
    std::lock_guard<std::mutex> lock(mutex_);
    transfers_.push_back({gpu, TaskKind::Update, panel, -1, start, end});
  }

  void clear() {
    std::lock_guard<std::mutex> lock(mutex_);
    events_.clear();
    transfers_.clear();
  }

  std::size_t num_events() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return events_.size();
  }
  std::size_t num_transfers() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return transfers_.size();
  }
  std::vector<Event> events() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return events_;
  }

  /// Chrome-tracing "traceEvents" JSON (complete events, microseconds).
  void write_chrome_json(std::ostream& out) const;
  void write_chrome_json_file(const std::string& path) const;

 private:
  mutable std::mutex mutex_;
  std::vector<Event> events_;
  std::vector<Event> transfers_;
};

}  // namespace spx
