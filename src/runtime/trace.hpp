// Execution trace recording (both drivers) and chrome-tracing export.
//
// StarPU and PaRSEC ship Paje/FxT tracing for post-mortem Gantt analysis;
// this is the equivalent here.  Both drivers can record every task's
// (resource, kind, panel, start, end); the JSON export loads directly into
// chrome://tracing or Perfetto, one row per resource.
//
// Since the observability layer landed (DESIGN.md §11) this is a thin
// compatibility facade over obs::Tracer: events are spans in a *bounded*
// thread-safe ring buffer (capacity() events; a long service run keeps
// the most recent window and counts the overwritten rest in dropped()
// instead of buffering unboundedly), and the chrome JSON is produced by
// the shared obs::write_chrome_trace exporter over the same span stream.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "obs/span.hpp"
#include "runtime/task.hpp"

namespace spx {

/// Escapes `s` for use inside a JSON string literal (quotes, backslashes,
/// and control characters).  Alias of obs::json_escape, kept for callers
/// of the pre-obs API.
std::string json_escape(std::string_view s);

class TraceRecorder {
 public:
  /// Default event capacity: enough for every per-task run in the test
  /// and bench suites; service-scale runs wrap and count drops.
  static constexpr std::size_t kDefaultCapacity = 1u << 20;

  struct Event {
    int resource;
    TaskKind kind;
    index_t panel;
    index_t edge;
    double start;  ///< seconds (virtual for the simulator, wall otherwise)
    double end;
  };

  explicit TraceRecorder(std::size_t capacity = kDefaultCapacity)
      : tracer_(capacity) {}

  void record(int resource, const Task& task, double start, double end);

  /// Also usable for transfer events (resource = DMA engine row).
  void record_transfer(int gpu, index_t panel, double start, double end);

  void clear() { tracer_.clear(); }

  /// Task events currently retained (excludes transfers and anything the
  /// ring overwrote).
  std::size_t num_events() const;
  std::size_t num_transfers() const;
  /// Events lost to the ring bound since construction or clear(): a
  /// nonzero value means the chrome export shows the most recent
  /// `capacity()` events, not the whole run.
  std::uint64_t dropped() const { return tracer_.dropped(); }
  std::size_t capacity() const { return tracer_.capacity(); }

  /// Retained task events, oldest first.
  std::vector<Event> events() const;

  /// The underlying span stream (for the obs exporters and tests).
  const obs::Tracer& tracer() const { return tracer_; }

  /// Chrome-tracing "traceEvents" JSON (complete events, microseconds).
  void write_chrome_json(std::ostream& out) const;
  void write_chrome_json_file(const std::string& path) const;

 private:
  obs::Tracer tracer_;
};

}  // namespace spx
