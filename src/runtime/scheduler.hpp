// Scheduler interface shared by the three runtimes.
//
// A scheduler is a passive state machine driven by an execution driver:
// the real driver calls it from worker threads (schedulers are internally
// synchronized); the discrete-event simulator calls it from its event
// loop.  This split is what lets the *same* scheduling logic run both for
// real and under the simulated Mirage platform.
#pragma once

#include <string>

#include "runtime/machine.hpp"
#include "runtime/run_stats.hpp"
#include "runtime/subtree_merge.hpp"
#include "runtime/task.hpp"

namespace spx {

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// Re-initializes all dependency state and seeds the initial ready set.
  virtual void reset() = 0;

  /// Asks for work for `resource`.  Returns false when nothing is
  /// currently runnable there (more work may appear after completions).
  virtual bool try_pop(int resource, Task* out) = 0;

  /// Reports completion of a task previously popped by `resource`;
  /// releases dependencies and may make new tasks runnable.
  virtual void on_complete(const Task& task, int resource) = 0;

  /// True when every task has completed.
  virtual bool finished() const = 0;

  /// Human-readable runtime name ("native", "starpu", "parsec") used in
  /// logs and benchmark tables.
  virtual std::string name() const = 0;

  /// Queued-but-not-started task on `resource` whose data the driver may
  /// prefetch (StarPU's transfer prefetch); each task returned once.
  virtual bool peek_prefetch(int /*resource*/, Task* /*out*/) {
    return false;
  }

  /// Subtree grouping used by this scheduler, when it emits
  /// TaskKind::Subtree tasks (drivers need the member lists to execute
  /// them); null otherwise.
  virtual const SubtreeGroups* subtree_groups() const { return nullptr; }

  /// Per-worker contention counters accumulated since the last reset().
  /// Only meaningful when the scheduler is quiescent (workers joined);
  /// schedulers that do not measure contention return empty vectors.
  virtual ContentionStats contention() const { return {}; }
};

}  // namespace spx
