#include "runtime/parsec_scheduler.hpp"

#include "obs/obs.hpp"

#include <algorithm>

namespace spx {

ParsecScheduler::ParsecScheduler(const TaskTable& table,
                                 const Machine& machine,
                                 const TaskCosts& costs,
                                 ParsecOptions options)
    : table_(&table),
      machine_(&machine),
      costs_(&costs),
      options_(options) {
  groups_ = merge_subtrees(table.structure(), costs,
                           options.subtree_merge_seconds);
  priority_ = table.bottom_levels(costs);
  const index_t np = table.num_panels();
  remaining_in_.configure(static_cast<std::size_t>(np));
  local_.configure(machine.num_cpus());
  commute_.configure(np);
  counters_.configure(machine.num_resources());
  reset();
}

void ParsecScheduler::reset() {
  // Reset runs while the scheduler is quiescent (no workers attached).
  SPX_OBS(obs::MetricsRegistry::global()
              .counter("spx_scheduler_resets_total",
                       "Scheduler reset()s (one per driver run)",
                       {{"scheduler", "parsec"}})
              .inc());
  const SymbolicStructure& st = table_->structure();
  remaining_in_.assign(st.in_degree);
  local_.clear();
  commute_.clear();
  gpu_queue_.assign(std::max(0, machine_->num_gpus()), {});
  gpu_backlog_.assign(std::max(0, machine_->num_gpus()), 0.0);
  completed_.store(0, std::memory_order_relaxed);
  total_tasks_ = table_->num_tasks();
  counters_.clear();
  // Seed: leaves of the elimination forest -- or whole merged subtrees --
  // spread round-robin (PaRSEC's initial distribution of ready tasks).
  double ignored_wait = 0.0;
  int w = 0;
  for (index_t p = 0; p < table_->num_panels(); ++p) {
    if (groups_.grouped(p)) {
      // Complete subtrees have no external predecessors: the group task is
      // ready immediately; members are never scheduled individually.
      if (groups_.is_root(p)) {
        local_.push(w % local_.num_shards(), {TaskKind::Subtree, p, -1},
                    ignored_wait);
        ++w;
      }
    } else if (remaining_in_.load(static_cast<std::size_t>(p)) == 0) {
      local_.push(w % local_.num_shards(), {TaskKind::Panel, p, -1},
                  ignored_wait);
      ++w;
    }
  }
}

bool ParsecScheduler::gpu_eligible(const Task& t) const {
  return machine_->num_gpus() > 0 && t.kind == TaskKind::Update &&
         table_->flops(t) >= options_.gpu_min_flops;
}

void ParsecScheduler::push_gpu(const Task& t, double& lock_wait) {
  TimedLock lock(gpu_mutex_, lock_wait);
  // Least-backlogged device (PaRSEC balances devices by pending work).
  int best = 0;
  for (int g = 1; g < static_cast<int>(gpu_queue_.size()); ++g) {
    if (gpu_backlog_[g] < gpu_backlog_[best]) best = g;
  }
  auto cmp = [&](const Task& a, const Task& b) {
    return priority_[table_->id_of(a)] < priority_[table_->id_of(b)];
  };
  gpu_queue_[best].push_back(t);
  std::push_heap(gpu_queue_[best].begin(), gpu_queue_[best].end(), cmp);
  gpu_backlog_[best] += table_->flops(t);
}

bool ParsecScheduler::pop_gpu(int gpu, Task* out, double& lock_wait) {
  TimedLock lock(gpu_mutex_, lock_wait);
  auto& q = gpu_queue_[gpu];
  if (q.empty()) return false;
  auto cmp = [&](const Task& a, const Task& b) {
    return priority_[table_->id_of(a)] < priority_[table_->id_of(b)];
  };
  std::pop_heap(q.begin(), q.end(), cmp);
  *out = q.back();
  q.pop_back();
  gpu_backlog_[gpu] -= table_->flops(*out);
  return true;
}

bool ParsecScheduler::acquire_target(const Task& t, int resource,
                                     double& lock_wait) {
  if (t.kind != TaskKind::Update) return true;
  const index_t dst = table_->structure().targets[t.panel][t.edge].dst;
  return commute_.acquire(dst, t, resource, lock_wait);
}

bool ParsecScheduler::try_pop(int resource, Task* out) {
  WorkerCounters& c = counters_.at(resource);
  const Resource& res = machine_->resource(resource);
  Task t;
  if (res.kind == ResourceKind::GpuStream) {
    while (pop_gpu(res.gpu, &t, c.lock_wait)) {
      if (acquire_target(t, resource, c.lock_wait)) {
        *out = t;
        ++c.pops;
        return true;
      }
    }
    return false;
  }
  // CPU worker: LIFO from own deque (data reuse), then steal FIFO from the
  // most loaded peer, then help the GPU queues.  Each pop holds only the
  // one shard lock involved; commute acquisition happens after the shard
  // lock is dropped, so no two scheduler locks are ever held together.
  c.depth_sum += static_cast<double>(local_.approx_size(resource));
  ++c.depth_samples;
  while (local_.pop_lifo(resource, &t, c.lock_wait)) {
    if (acquire_target(t, resource, c.lock_wait)) {
      *out = t;
      ++c.pops;
      return true;
    }
  }
  while (true) {
    const int victim = local_.most_loaded(resource);
    if (victim < 0) break;
    // A failed pop refreshes the victim's published size, so a stale
    // nonzero estimate cannot loop forever.
    if (!local_.pop_fifo(victim, &t, c.lock_wait)) continue;
    ++c.steals;
    if (acquire_target(t, resource, c.lock_wait)) {
      *out = t;
      ++c.pops;
      return true;
    }
  }
  // Help drain GPU backlogs when otherwise idle (all tasks have CPU
  // implementations).
  for (int g = 0; g < static_cast<int>(gpu_queue_.size()); ++g) {
    while (pop_gpu(g, &t, c.lock_wait)) {
      if (acquire_target(t, resource, c.lock_wait)) {
        *out = t;
        ++c.pops;
        return true;
      }
    }
  }
  return false;
}

void ParsecScheduler::on_complete(const Task& task, int resource) {
  WorkerCounters& c = counters_.at(resource);
  const SymbolicStructure& st = table_->structure();
  const Resource& res = machine_->resource(resource);
  const int local_worker = res.kind == ResourceKind::Cpu ? resource : 0;

  if (task.kind == TaskKind::Subtree) {
    // The group task already applied every member's updates (internal and
    // external); release the external dependencies in one sweep.
    for (const index_t m : groups_.members[task.panel]) {
      for (const UpdateEdge& e : st.targets[m]) {
        if (groups_.root_of[e.dst] == task.panel) continue;  // internal
        if (remaining_in_.release_one(static_cast<std::size_t>(e.dst))) {
          local_.push(local_worker, {TaskKind::Panel, e.dst, -1},
                      c.lock_wait);
        }
      }
    }
    completed_.fetch_add(groups_.units(st, task.panel),
                         std::memory_order_acq_rel);
    return;
  }
  if (task.kind == TaskKind::Panel) {
    // Local, stateless release: the worker that factored the panel
    // instantiates this panel's update tasks on its own queue (or the
    // device queues), touching nothing global.
    for (index_t e = 0;
         e < static_cast<index_t>(st.targets[task.panel].size()); ++e) {
      const Task u{TaskKind::Update, task.panel, e};
      if (gpu_eligible(u)) {
        push_gpu(u, c.lock_wait);
      } else {
        local_.push(local_worker, u, c.lock_wait);
      }
    }
  } else {
    const index_t dst = st.targets[task.panel][task.edge].dst;
    // Wake deferred commute tasks on the queues of the workers that had
    // claimed them.
    for (auto& [t, r] : commute_.release(dst, c.lock_wait)) {
      if (machine_->resource(r).kind == ResourceKind::GpuStream) {
        push_gpu(t, c.lock_wait);
      } else {
        local_.push(r, t, c.lock_wait);
      }
    }
    if (remaining_in_.release_one(static_cast<std::size_t>(dst))) {
      local_.push(local_worker, {TaskKind::Panel, dst, -1}, c.lock_wait);
    }
  }
  completed_.fetch_add(1, std::memory_order_acq_rel);
}

bool ParsecScheduler::finished() const {
  return completed_.load(std::memory_order_acquire) == total_tasks_;
}

index_t ParsecScheduler::steal_count() const {
  const ContentionStats c = counters_.snapshot();
  return c.total_steals();
}

}  // namespace spx
