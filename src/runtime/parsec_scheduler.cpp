#include "runtime/parsec_scheduler.hpp"

#include <algorithm>

namespace spx {

ParsecScheduler::ParsecScheduler(const TaskTable& table,
                                 const Machine& machine,
                                 const TaskCosts& costs,
                                 ParsecOptions options)
    : table_(&table),
      machine_(&machine),
      costs_(&costs),
      options_(options) {
  groups_ = merge_subtrees(table.structure(), costs,
                           options.subtree_merge_seconds);
  priority_ = table.bottom_levels(costs);
  reset();
}

void ParsecScheduler::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  const SymbolicStructure& st = table_->structure();
  remaining_in_ = st.in_degree;
  local_.assign(std::max(1, machine_->num_cpus()), {});
  gpu_queue_.assign(std::max(0, machine_->num_gpus()), {});
  gpu_backlog_.assign(std::max(0, machine_->num_gpus()), 0.0);
  target_busy_.assign(static_cast<std::size_t>(table_->num_panels()), 0);
  waiting_.assign(static_cast<std::size_t>(table_->num_panels()), {});
  completed_ = 0;
  steals_ = 0;
  total_tasks_ = table_->num_tasks();
  // Seed: leaves of the elimination forest -- or whole merged subtrees --
  // spread round-robin (PaRSEC's initial distribution of ready tasks).
  int w = 0;
  for (index_t p = 0; p < table_->num_panels(); ++p) {
    if (groups_.grouped(p)) {
      // Complete subtrees have no external predecessors: the group task is
      // ready immediately; members are never scheduled individually.
      if (groups_.is_root(p)) {
        local_[w % local_.size()].push_back({TaskKind::Subtree, p, -1});
        ++w;
      }
    } else if (remaining_in_[p] == 0) {
      local_[w % local_.size()].push_back({TaskKind::Panel, p, -1});
      ++w;
    }
  }
}

bool ParsecScheduler::gpu_eligible(const Task& t) const {
  return machine_->num_gpus() > 0 && t.kind == TaskKind::Update &&
         table_->flops(t) >= options_.gpu_min_flops;
}

void ParsecScheduler::push_local(const Task& t, int worker) {
  const int nw = static_cast<int>(local_.size());
  local_[worker >= 0 && worker < nw ? worker : 0].push_back(t);
}

void ParsecScheduler::push_gpu(const Task& t) {
  // Least-backlogged device (PaRSEC balances devices by pending work).
  int best = 0;
  for (int g = 1; g < static_cast<int>(gpu_queue_.size()); ++g) {
    if (gpu_backlog_[g] < gpu_backlog_[best]) best = g;
  }
  auto cmp = [&](const Task& a, const Task& b) {
    return priority_[table_->id_of(a)] < priority_[table_->id_of(b)];
  };
  gpu_queue_[best].push_back(t);
  std::push_heap(gpu_queue_[best].begin(), gpu_queue_[best].end(), cmp);
  gpu_backlog_[best] += table_->flops(t);
}

bool ParsecScheduler::acquire_target(const Task& t, int resource) {
  if (t.kind != TaskKind::Update) return true;
  const index_t dst = table_->structure().targets[t.panel][t.edge].dst;
  if (target_busy_[dst]) {
    waiting_[dst].emplace_back(t, resource);
    return false;
  }
  target_busy_[dst] = 1;
  return true;
}

bool ParsecScheduler::try_pop(int resource, Task* out) {
  std::lock_guard<std::mutex> lock(mutex_);
  const Resource& res = machine_->resource(resource);
  if (res.kind == ResourceKind::GpuStream) {
    auto& q = gpu_queue_[res.gpu];
    auto cmp = [&](const Task& a, const Task& b) {
      return priority_[table_->id_of(a)] < priority_[table_->id_of(b)];
    };
    while (!q.empty()) {
      std::pop_heap(q.begin(), q.end(), cmp);
      const Task t = q.back();
      q.pop_back();
      gpu_backlog_[res.gpu] -= table_->flops(t);
      if (acquire_target(t, resource)) {
        *out = t;
        return true;
      }
    }
    return false;
  }
  // CPU worker: LIFO from own deque (data reuse), then steal FIFO from the
  // most loaded peer, then help the GPU queues.
  auto& own = local_[resource];
  while (!own.empty()) {
    const Task t = own.back();
    own.pop_back();
    if (acquire_target(t, resource)) {
      *out = t;
      return true;
    }
  }
  while (true) {
    int victim = -1;
    std::size_t most = 0;
    for (int w = 0; w < static_cast<int>(local_.size()); ++w) {
      if (w == resource) continue;
      if (local_[w].size() > most) {
        most = local_[w].size();
        victim = w;
      }
    }
    if (victim < 0) break;
    const Task t = local_[victim].front();
    local_[victim].pop_front();
    ++steals_;
    if (acquire_target(t, resource)) {
      *out = t;
      return true;
    }
  }
  // Help drain GPU backlogs when otherwise idle (all tasks have CPU
  // implementations).
  for (auto& q : gpu_queue_) {
    auto cmp = [&](const Task& a, const Task& b) {
      return priority_[table_->id_of(a)] < priority_[table_->id_of(b)];
    };
    while (!q.empty()) {
      std::pop_heap(q.begin(), q.end(), cmp);
      const Task t = q.back();
      q.pop_back();
      gpu_backlog_[&q - gpu_queue_.data()] -= table_->flops(t);
      if (acquire_target(t, resource)) {
        *out = t;
        return true;
      }
    }
  }
  return false;
}

void ParsecScheduler::on_complete(const Task& task, int resource) {
  std::lock_guard<std::mutex> lock(mutex_);
  const SymbolicStructure& st = table_->structure();
  const Resource& res = machine_->resource(resource);
  const int local_worker = res.kind == ResourceKind::Cpu ? resource : 0;

  if (task.kind == TaskKind::Subtree) {
    // The group task already applied every member's updates (internal and
    // external); release the external dependencies in one sweep.
    for (const index_t m : groups_.members[task.panel]) {
      for (const UpdateEdge& e : st.targets[m]) {
        if (groups_.root_of[e.dst] == task.panel) continue;  // internal
        if (--remaining_in_[e.dst] == 0) {
          push_local({TaskKind::Panel, e.dst, -1}, local_worker);
        }
      }
    }
    completed_ += groups_.units(st, task.panel);
    return;
  }
  if (task.kind == TaskKind::Panel) {
    // Local, stateless release: the worker that factored the panel
    // instantiates this panel's update tasks on its own queue (or the
    // device queues), touching nothing global.
    for (index_t e = 0;
         e < static_cast<index_t>(st.targets[task.panel].size()); ++e) {
      const Task u{TaskKind::Update, task.panel, e};
      if (gpu_eligible(u)) {
        push_gpu(u);
      } else {
        push_local(u, local_worker);
      }
    }
  } else {
    const index_t dst = st.targets[task.panel][task.edge].dst;
    target_busy_[dst] = 0;
    auto& wait = waiting_[dst];
    if (!wait.empty()) {
      // Wake deferred commute tasks on the queues of the workers that had
      // claimed them.
      for (auto& [t, r] : wait) {
        if (machine_->resource(r).kind == ResourceKind::GpuStream) {
          push_gpu(t);
        } else {
          push_local(t, r);
        }
      }
      wait.clear();
    }
    if (--remaining_in_[dst] == 0) {
      push_local({TaskKind::Panel, dst, -1}, local_worker);
    }
  }
  ++completed_;
}

bool ParsecScheduler::finished() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return completed_ == total_tasks_;
}

}  // namespace spx
