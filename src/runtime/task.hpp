// Task identities and the flattened task table shared by all runtimes.
//
// Two task kinds (paper §V): the panel task (factor + TRSM) and the update
// task, one per (source panel, target panel) edge.  The table flattens
// them into dense ids, precomputes flop counts, and computes bottom-level
// priorities (longest path to the DAG's end), which every scheduler uses
// as its priority signal.
#pragma once

#include <vector>

#include "symbolic/structure.hpp"

namespace spx {

enum class TaskKind : std::uint8_t {
  Panel,    ///< factor + TRSM of one panel
  Update,   ///< one (source, target) GEMM update
  Subtree   ///< merged bottom-of-tree group: factor + updates of every
            ///< member panel, sequentially (future-work granularity knob)
};

/// One schedulable unit, identified by kind + panel (+ edge for updates).
struct Task {
  TaskKind kind = TaskKind::Panel;
  index_t panel = -1;  ///< source panel
  index_t edge = -1;   ///< index into structure.targets[panel] for updates

  /// False for a default-constructed (empty) task.
  bool valid() const { return panel >= 0; }
};

/// Resource classes a task can run on.
enum class ResourceKind : std::uint8_t { Cpu, GpuStream };

/// Per-task execution-cost oracle consumed by every scheduler: dmda/HEFT
/// completion-time ranking (StarPU), the static cost-model mapping
/// (native), steal ordering (PaRSEC), bottom-level priorities, subtree
/// merging, and the distributed mapping.  Three implementations: the
/// simulator's analytic platform model (sim::CostModel), the
/// flop-proportional oracle (FlopCosts), and the calibrated, history-
/// refined model of this host (perfmodel::CalibratedCosts).
class TaskCosts {
 public:
  virtual ~TaskCosts() = default;
  /// Seconds to factor panel `p` (diagonal factor + TRSM) on `kind`.
  /// Panel tasks are CPU-only (paper §V-B: panel factorization is never
  /// offloaded); implementations either answer GpuStream queries with the
  /// CPU time or throw InvalidArgument -- callers must not rank panels on
  /// GPU resources.
  virtual double panel_seconds(index_t p, ResourceKind kind) const = 0;
  /// Seconds of the update task along `edge` of panel `p` on `kind`.
  virtual double update_seconds(index_t p, index_t edge,
                                ResourceKind kind) const = 0;
  /// Seconds to move `bytes` across PCIe (0 for a pure-CPU platform).
  virtual double transfer_seconds(double bytes) const = 0;
};

/// Sink for measured per-task durations -- the "refine online" hook of
/// the perfmodel pipeline (docs/PERF_MODELS.md).  The real driver invokes
/// it from worker threads after every Panel/Update completion, so
/// implementations must be thread-safe.
class TaskDurationObserver {
 public:
  virtual ~TaskDurationObserver() = default;
  /// One measured execution: `t` ran for `seconds` on a `kind` resource.
  virtual void observe_task(const Task& t, ResourceKind kind,
                            double seconds) = 0;
};

/// Dense numbering: panel task p -> p; update (p, e) -> np + base[p] + e.
class TaskTable {
 public:
  /// Flattens the task DAG of `st` under factorization `kind`; `st` must
  /// outlive the table.
  TaskTable(const SymbolicStructure& st, Factorization kind);

  /// The symbolic structure the ids index into.
  const SymbolicStructure& structure() const { return *st_; }
  /// Factorization kind the flop counts were computed for.
  Factorization factorization() const { return kind_; }

  index_t num_panels() const { return np_; }
  index_t num_tasks() const { return ntasks_; }
  index_t num_updates() const { return ntasks_ - np_; }

  /// Dense id of a panel or update task (inverse of task_of).
  index_t id_of(const Task& t) const {
    return t.kind == TaskKind::Panel ? t.panel
                                     : np_ + update_base_[t.panel] + t.edge;
  }
  /// Task identity of a dense id (inverse of id_of).
  Task task_of(index_t id) const {
    if (id < np_) return {TaskKind::Panel, id, -1};
    const index_t u = id - np_;
    // Binary search the owning panel.
    index_t lo = 0, hi = np_;
    while (lo + 1 < hi) {
      const index_t mid = (lo + hi) / 2;
      if (update_base_[mid] <= u) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
    return {TaskKind::Update, lo, u - update_base_[lo]};
  }

  /// Precomputed flop count of a task (structure.{panel,update}_task_flops).
  double flops(const Task& t) const { return flops_[id_of(t)]; }

  /// Bottom level: task duration + longest downstream chain, computed with
  /// the given cost oracle on CPU timings.  Higher = more critical.
  std::vector<double> bottom_levels(const TaskCosts& costs) const;

 private:
  const SymbolicStructure* st_;
  Factorization kind_;
  index_t np_ = 0;
  index_t ntasks_ = 0;
  std::vector<index_t> update_base_;
  std::vector<double> flops_;
};

}  // namespace spx
