// Task identities and the flattened task table shared by all runtimes.
//
// Two task kinds (paper §V): the panel task (factor + TRSM) and the update
// task, one per (source panel, target panel) edge.  The table flattens
// them into dense ids, precomputes flop counts, and computes bottom-level
// priorities (longest path to the DAG's end), which every scheduler uses
// as its priority signal.
#pragma once

#include <vector>

#include "symbolic/structure.hpp"

namespace spx {

enum class TaskKind : std::uint8_t {
  Panel,    ///< factor + TRSM of one panel
  Update,   ///< one (source, target) GEMM update
  Subtree   ///< merged bottom-of-tree group: factor + updates of every
            ///< member panel, sequentially (future-work granularity knob)
};

struct Task {
  TaskKind kind = TaskKind::Panel;
  index_t panel = -1;  ///< source panel
  index_t edge = -1;   ///< index into structure.targets[panel] for updates

  bool valid() const { return panel >= 0; }
};

/// Resource classes a task can run on.
enum class ResourceKind : std::uint8_t { Cpu, GpuStream };

/// Per-task execution-cost oracle.  The simulator implements it with the
/// calibrated platform model; the real driver with a flop-proportional
/// estimate (enough for priorities and HEFT-style placement).
class TaskCosts {
 public:
  virtual ~TaskCosts() = default;
  virtual double panel_seconds(index_t p, ResourceKind kind) const = 0;
  virtual double update_seconds(index_t p, index_t edge,
                                ResourceKind kind) const = 0;
  /// Seconds to move `bytes` across PCIe (0 for a pure-CPU platform).
  virtual double transfer_seconds(double bytes) const = 0;
};

/// Dense numbering: panel task p -> p; update (p, e) -> np + base[p] + e.
class TaskTable {
 public:
  TaskTable(const SymbolicStructure& st, Factorization kind);

  const SymbolicStructure& structure() const { return *st_; }
  Factorization factorization() const { return kind_; }

  index_t num_panels() const { return np_; }
  index_t num_tasks() const { return ntasks_; }
  index_t num_updates() const { return ntasks_ - np_; }

  index_t id_of(const Task& t) const {
    return t.kind == TaskKind::Panel ? t.panel
                                     : np_ + update_base_[t.panel] + t.edge;
  }
  Task task_of(index_t id) const {
    if (id < np_) return {TaskKind::Panel, id, -1};
    const index_t u = id - np_;
    // Binary search the owning panel.
    index_t lo = 0, hi = np_;
    while (lo + 1 < hi) {
      const index_t mid = (lo + hi) / 2;
      if (update_base_[mid] <= u) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
    return {TaskKind::Update, lo, u - update_base_[lo]};
  }

  double flops(const Task& t) const { return flops_[id_of(t)]; }

  /// Bottom level: task duration + longest downstream chain, computed with
  /// the given cost oracle on CPU timings.  Higher = more critical.
  std::vector<double> bottom_levels(const TaskCosts& costs) const;

 private:
  const SymbolicStructure* st_;
  Factorization kind_;
  index_t np_ = 0;
  index_t ntasks_ = 0;
  std::vector<index_t> update_base_;
  std::vector<double> flops_;
};

}  // namespace spx
