// Subtree merging: the paper's first future-work item ("in order to
// minimize the scheduler overhead, we plan to increase the granularity of
// the tasks at the bottom of the elimination tree.  Merging leaves or
// subtrees together yields bigger, more computationally intensive tasks").
//
// A *complete* subtree of the panel DAG has no incoming update edges from
// outside (contributions only flow toward ancestors), so it can execute as
// one sequential task with zero synchronization: factor + updates of every
// member in topological order, releasing external dependencies once at the
// end.  We greedily form maximal complete subtrees whose estimated
// sequential work stays below a threshold; panels above the cut stay at
// normal granularity.
#pragma once

#include <vector>

#include "runtime/task.hpp"

namespace spx {

struct SubtreeGroups {
  /// Group root of each panel; == the panel itself when ungrouped or when
  /// it is the root of its group.
  std::vector<index_t> root_of;
  /// For each group root: the member panels in ascending (= topological)
  /// order, root included last.  Empty for ungrouped panels.
  std::vector<std::vector<index_t>> members;
  /// Number of multi-panel groups formed.
  index_t num_groups = 0;

  bool grouped(index_t p) const { return !members[root_of[p]].empty(); }
  bool is_root(index_t p) const { return root_of[p] == p; }

  /// Logical task units covered by the group rooted at `root` (panel tasks
  /// + update tasks of all members): completion accounting.
  index_t units(const SymbolicStructure& st, index_t root) const {
    index_t u = 0;
    for (const index_t m : members[root]) {
      u += 1 + static_cast<index_t>(st.targets[m].size());
    }
    return u;
  }
};

/// Forms complete-subtree groups whose sequential CPU time is at most
/// `max_seconds`; single-panel subtrees are left ungrouped (no benefit).
SubtreeGroups merge_subtrees(const SymbolicStructure& st,
                             const TaskCosts& costs, double max_seconds);

}  // namespace spx
