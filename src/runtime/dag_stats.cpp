#include "runtime/dag_stats.hpp"

#include <algorithm>
#include <vector>

namespace spx {

DagStats dag_stats(const SymbolicStructure& st, const TaskCosts& costs,
                   Decomposition decomposition) {
  const index_t np = st.num_panels();
  DagStats stats;

  if (decomposition == Decomposition::TwoLevel) {
    // level[p] = longest chain ending at factor(p)'s completion.
    std::vector<double> level(static_cast<std::size_t>(np), 0.0);
    for (index_t p = 0; p < np; ++p) {
      const double fp = costs.panel_seconds(p, ResourceKind::Cpu);
      stats.total_work += fp;
      level[p] += fp;
      stats.critical_path = std::max(stats.critical_path, level[p]);
      stats.num_tasks += 1 + static_cast<index_t>(st.targets[p].size());
      for (index_t e = 0; e < static_cast<index_t>(st.targets[p].size());
           ++e) {
        const double ue = costs.update_seconds(p, e, ResourceKind::Cpu);
        stats.total_work += ue;
        const index_t dst = st.targets[p][e].dst;
        level[dst] = std::max(level[dst], level[p] + ue);
      }
    }
    return stats;
  }

  // Coarse 1D durations: initialize with the panel task first (a second
  // pass attributes updates, which may land on later panels).
  std::vector<double> duration(static_cast<std::size_t>(np), 0.0);
  for (index_t p = 0; p < np; ++p) {
    duration[p] = costs.panel_seconds(p, ResourceKind::Cpu);
  }
  for (index_t p = 0; p < np; ++p) {
    for (index_t e = 0; e < static_cast<index_t>(st.targets[p].size());
         ++e) {
      const double ue = costs.update_seconds(p, e, ResourceKind::Cpu);
      // Right-looking: the update belongs to the *source* task; left-
      // looking: to the *target* task.
      duration[decomposition == Decomposition::OneDRight
                   ? p
                   : st.targets[p][e].dst] += ue;
    }
  }
  // In both coarse forms, task(p) precedes task(t) for every edge p -> t.
  std::vector<double> level(static_cast<std::size_t>(np), 0.0);
  for (index_t p = 0; p < np; ++p) {
    level[p] += duration[p];
    stats.total_work += duration[p];
    stats.critical_path = std::max(stats.critical_path, level[p]);
    for (const UpdateEdge& e : st.targets[p]) {
      level[e.dst] = std::max(level[e.dst], level[p]);
    }
  }
  stats.num_tasks = np;
  return stats;
}

}  // namespace spx
