#include "runtime/dag_stats.hpp"

#include <algorithm>
#include <vector>

namespace spx {

DagStats dag_stats(const SymbolicStructure& st, const TaskCosts& costs,
                   Decomposition decomposition) {
  const index_t np = st.num_panels();
  DagStats stats;

  // Unit-depth wavefront widths: hop_level[p] is the hop depth of
  // factor(p); updates sit one hop deeper and their targets two.  The
  // widest level bounds the instantaneous ready-set size.
  std::vector<index_t> width;
  auto count_at = [&width](index_t lvl) {
    if (lvl >= static_cast<index_t>(width.size())) {
      width.resize(static_cast<std::size_t>(lvl) + 1, 0);
    }
    ++width[static_cast<std::size_t>(lvl)];
  };

  if (decomposition == Decomposition::TwoLevel) {
    // level[p] = longest chain ending at factor(p)'s completion.
    std::vector<double> level(static_cast<std::size_t>(np), 0.0);
    std::vector<index_t> hop_level(static_cast<std::size_t>(np), 0);
    for (index_t p = 0; p < np; ++p) {
      const double fp = costs.panel_seconds(p, ResourceKind::Cpu);
      stats.total_work += fp;
      level[p] += fp;
      stats.critical_path = std::max(stats.critical_path, level[p]);
      stats.num_tasks += 1 + static_cast<index_t>(st.targets[p].size());
      count_at(hop_level[p]);
      for (index_t e = 0; e < static_cast<index_t>(st.targets[p].size());
           ++e) {
        const double ue = costs.update_seconds(p, e, ResourceKind::Cpu);
        stats.total_work += ue;
        const index_t dst = st.targets[p][e].dst;
        level[dst] = std::max(level[dst], level[p] + ue);
        count_at(hop_level[p] + 1);
        hop_level[dst] = std::max(hop_level[dst], hop_level[p] + 2);
      }
    }
    for (const index_t w : width) {
      stats.peak_width = std::max(stats.peak_width, w);
    }
    return stats;
  }

  // Coarse 1D durations: initialize with the panel task first (a second
  // pass attributes updates, which may land on later panels).
  std::vector<double> duration(static_cast<std::size_t>(np), 0.0);
  for (index_t p = 0; p < np; ++p) {
    duration[p] = costs.panel_seconds(p, ResourceKind::Cpu);
  }
  for (index_t p = 0; p < np; ++p) {
    for (index_t e = 0; e < static_cast<index_t>(st.targets[p].size());
         ++e) {
      const double ue = costs.update_seconds(p, e, ResourceKind::Cpu);
      // Right-looking: the update belongs to the *source* task; left-
      // looking: to the *target* task.
      duration[decomposition == Decomposition::OneDRight
                   ? p
                   : st.targets[p][e].dst] += ue;
    }
  }
  // In both coarse forms, task(p) precedes task(t) for every edge p -> t.
  std::vector<double> level(static_cast<std::size_t>(np), 0.0);
  std::vector<index_t> hop_level(static_cast<std::size_t>(np), 0);
  for (index_t p = 0; p < np; ++p) {
    level[p] += duration[p];
    stats.total_work += duration[p];
    stats.critical_path = std::max(stats.critical_path, level[p]);
    count_at(hop_level[p]);
    for (const UpdateEdge& e : st.targets[p]) {
      level[e.dst] = std::max(level[e.dst], level[p]);
      hop_level[e.dst] = std::max(hop_level[e.dst], hop_level[p] + 1);
    }
  }
  stats.num_tasks = np;
  for (const index_t w : width) {
    stats.peak_width = std::max(stats.peak_width, w);
  }
  return stats;
}

}  // namespace spx
