// The PaRSEC-like runtime (paper §IV).
//
// Characteristics reproduced from PaRSEC's parameterized task graph:
//   * NO materialized task list: tasks exist only when they become ready.
//     Dependencies are resolved locally from the compact symbolic
//     structure (counters per panel), exactly the "concise representation"
//     /"stateless exploration" the paper describes -- contrast with the
//     StarPU scheduler, which builds the full graph at submission;
//   * data-reuse scheduling: a completed task pushes its successors onto
//     the *local* worker's deque (the panel it just touched is hot in that
//     worker's cache); workers pop LIFO locally and steal FIFO from the
//     most loaded peer;
//   * GPUs are managed cooperatively (no dedicated CPU worker is removed)
//     and expose multiple streams, each an independent kernel slot --
//     small sparse kernels overlap on the device (paper §V-B/C);
//   * GPU work selection by a flop threshold plus least-loaded device
//     queueing.
#pragma once

#include <deque>
#include <mutex>

#include "runtime/scheduler.hpp"
#include "runtime/subtree_merge.hpp"

namespace spx {

struct ParsecOptions {
  /// Updates below this many flops never go to a GPU.
  double gpu_min_flops = 2e6;
  /// Merge complete bottom subtrees whose sequential work is below this
  /// many seconds into single tasks (0 disables).  Paper future work:
  /// "merging leaves or subtrees together yields bigger, more
  /// computationally intensive tasks".
  double subtree_merge_seconds = 0.0;
};

class ParsecScheduler : public Scheduler {
 public:
  ParsecScheduler(const TaskTable& table, const Machine& machine,
                  const TaskCosts& costs, ParsecOptions options = {});

  void reset() override;
  bool try_pop(int resource, Task* out) override;
  void on_complete(const Task& task, int resource) override;
  bool finished() const override;
  std::string name() const override { return "parsec"; }

  index_t steal_count() const { return steals_; }
  const SubtreeGroups* subtree_groups() const override {
    return groups_.num_groups > 0 ? &groups_ : nullptr;
  }

 private:
  bool gpu_eligible(const Task& t) const;
  void push_local(const Task& t, int worker);
  void push_gpu(const Task& t);
  bool acquire_target(const Task& t, int resource);

  const TaskTable* table_;
  const Machine* machine_;
  const TaskCosts* costs_;
  ParsecOptions options_;
  SubtreeGroups groups_;
  std::vector<double> priority_;

  mutable std::mutex mutex_;
  std::vector<index_t> remaining_in_;
  /// Per-CPU-worker local deques (LIFO pop for cache reuse, FIFO steal).
  std::vector<std::deque<Task>> local_;
  /// Per-GPU queues (max-priority heaps) and pending-flops accounting.
  std::vector<std::vector<Task>> gpu_queue_;
  std::vector<double> gpu_backlog_;
  /// Commute exclusion on update targets.
  std::vector<char> target_busy_;
  std::vector<std::vector<std::pair<Task, int>>> waiting_;
  index_t completed_ = 0;
  index_t total_tasks_ = 0;
  index_t steals_ = 0;
};

}  // namespace spx
