// The PaRSEC-like runtime (paper §IV).
//
// Characteristics reproduced from PaRSEC's parameterized task graph:
//   * NO materialized task list: tasks exist only when they become ready.
//     Dependencies are resolved locally from the compact symbolic
//     structure (counters per panel), exactly the "concise representation"
//     /"stateless exploration" the paper describes -- contrast with the
//     StarPU scheduler, which builds the full graph at submission;
//   * data-reuse scheduling: a completed task pushes its successors onto
//     the *local* worker's deque (the panel it just touched is hot in that
//     worker's cache); workers pop LIFO locally and steal FIFO from the
//     most loaded peer;
//   * GPUs are managed cooperatively (no dedicated CPU worker is removed)
//     and expose multiple streams, each an independent kernel slot --
//     small sparse kernels overlap on the device (paper §V-B/C);
//   * GPU work selection by a flop threshold plus least-loaded device
//     queueing.
//
// Concurrency: the scheduler is sharded.  Each CPU worker owns a deque
// shard with its own lock; dependency counters are atomics released with
// fetch_sub; commute exclusion on update targets goes through striped
// locks.  on_complete touches only the completing worker's shard (plus
// the released successors' stripe/shard), never a global lock -- the
// "local dependency release" that §IV credits for PaRSEC's scalability.
// Only the device queues share one small mutex.
#pragma once

#include <atomic>
#include <mutex>

#include "runtime/scheduler.hpp"
#include "runtime/subtree_merge.hpp"
#include "runtime/worker_queues.hpp"

namespace spx {

struct ParsecOptions {
  /// Updates below this many flops never go to a GPU.
  double gpu_min_flops = 2e6;
  /// Merge complete bottom subtrees whose sequential work is below this
  /// many seconds into single tasks (0 disables).  Paper future work:
  /// "merging leaves or subtrees together yields bigger, more
  /// computationally intensive tasks".
  double subtree_merge_seconds = 0.0;
};

class ParsecScheduler : public Scheduler {
 public:
  ParsecScheduler(const TaskTable& table, const Machine& machine,
                  const TaskCosts& costs, ParsecOptions options = {});

  void reset() override;
  bool try_pop(int resource, Task* out) override;
  void on_complete(const Task& task, int resource) override;
  bool finished() const override;
  std::string name() const override { return "parsec"; }

  index_t steal_count() const;
  const SubtreeGroups* subtree_groups() const override {
    return groups_.num_groups > 0 ? &groups_ : nullptr;
  }
  ContentionStats contention() const override { return counters_.snapshot(); }

 private:
  bool gpu_eligible(const Task& t) const;
  void push_gpu(const Task& t, double& lock_wait);
  bool pop_gpu(int gpu, Task* out, double& lock_wait);
  /// Claims the commute lock on an update's target (parks the task when
  /// busy); non-update tasks always pass.
  bool acquire_target(const Task& t, int resource, double& lock_wait);

  const TaskTable* table_;
  const Machine* machine_;
  const TaskCosts* costs_;
  ParsecOptions options_;
  SubtreeGroups groups_;
  std::vector<double> priority_;

  AtomicCounters remaining_in_;
  /// Per-CPU-worker local deques (LIFO pop for cache reuse, FIFO steal).
  ShardedTaskDeque local_;
  /// Commute exclusion on update targets.
  CommuteStripes commute_;
  /// Per-GPU queues (max-priority heaps) and pending-flops accounting.
  mutable std::mutex gpu_mutex_;
  std::vector<std::vector<Task>> gpu_queue_;
  std::vector<double> gpu_backlog_;
  std::atomic<index_t> completed_{0};
  index_t total_tasks_ = 0;
  CounterBank counters_;
};

}  // namespace spx
