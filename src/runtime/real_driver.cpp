#include "runtime/real_driver.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include <cstring>

#include "common/timer.hpp"
#include "core/codelets.hpp"
#include "runtime/data_directory.hpp"
#include "runtime/device_engine.hpp"
#include "runtime/worker_queues.hpp"

namespace spx {
namespace {

/// PanelStore over FactorData<T>: panels as raw byte ranges (L block,
/// plus the U block for LU; the tiny LDLT diagonal stays host-resident).
/// Copies run under the driver's per-panel lock, taken by the caller.
template <typename T>
class FactorPanelStore final : public PanelStore {
 public:
  FactorPanelStore(FactorData<T>& f, std::mutex* locks)
      : f_(&f), locks_(locks) {}

  std::size_t panel_bytes(index_t p) const override {
    const std::size_t block = block_bytes(p);
    return f_->kind() == Factorization::LU ? 2 * block : block;
  }

  void read_panel(index_t p, std::byte* dst) const override {
    const std::size_t block = block_bytes(p);
    std::memcpy(dst, f_->panel_l(p), block);
    if (f_->kind() == Factorization::LU) {
      std::memcpy(dst + block, f_->panel_u(p), block);
    }
  }

  void write_panel(index_t p, const std::byte* src) override {
    const std::size_t block = block_bytes(p);
    std::memcpy(f_->panel_l(p), src, block);
    if (f_->kind() == Factorization::LU) {
      std::memcpy(f_->panel_u(p), src + block, block);
    }
  }

  std::mutex& panel_mutex(index_t p) const override { return locks_[p]; }

 private:
  std::size_t block_bytes(index_t p) const {
    const Panel& pn = f_->structure().panels[p];
    return static_cast<std::size_t>(pn.nrows) *
           static_cast<std::size_t>(pn.width()) * sizeof(T);
  }

  FactorData<T>* f_;
  std::mutex* locks_;
};

const char* task_kind_name(TaskKind k) {
  switch (k) {
    case TaskKind::Panel:
      return "panel";
    case TaskKind::Update:
      return "update";
    case TaskKind::Subtree:
      return "subtree";
  }
  return "?";
}

/// Per-run metric handles, resolved once (registration takes a mutex;
/// the hot path only touches the pre-resolved pointers through SPX_OBS).
struct DriverMetrics {
  obs::Counter* tasks[3][2] = {};  ///< [kind][cpu=0|gpu=1]
  obs::Histogram* seconds[3] = {};  ///< per-kind duration histograms

  explicit DriverMetrics(obs::MetricsRegistry& reg) {
    static constexpr TaskKind kKinds[3] = {TaskKind::Panel, TaskKind::Update,
                                           TaskKind::Subtree};
    for (int k = 0; k < 3; ++k) {
      const char* kind = task_kind_name(kKinds[k]);
      for (int g = 0; g < 2; ++g) {
        tasks[k][g] = &reg.counter(
            "spx_tasks_executed_total", "Tasks executed by the real driver",
            {{"kind", kind}, {"resource", g == 0 ? "cpu" : "gpu"}});
      }
      seconds[k] = &reg.histogram("spx_task_seconds",
                                  obs::Histogram::duration_bounds(),
                                  "Per-task execution wall time",
                                  {{"kind", kind}});
    }
  }

  void observe(const Task& t, bool gpu, double seconds_taken) {
    const int k = static_cast<int>(t.kind);
    tasks[k][gpu ? 1 : 0]->inc();
    seconds[k]->observe(seconds_taken);
  }
};

template <typename T>
class RealRun {
 public:
  RealRun(Scheduler& sched, const Machine& machine, FactorData<T>& f,
          const RealDriverOptions& options)
      : sched_(sched),
        machine_(machine),
        f_(f),
        options_(options),
        registry_(obs::registry_or_global(options.instr.metrics)),
        metrics_(registry_),
        tracer_(options.instr.tracer) {
    trace_ = options.instr.trace;
    fault_ = options.instr.fault;
    panel_locks_ = std::make_unique<std::mutex[]>(
        static_cast<std::size_t>(f.structure().num_panels()));
    if (options_.hetero.enabled()) {
      store_ = std::make_unique<FactorPanelStore<T>>(f_, panel_locks_.get());
      directory_ = options_.hetero.directory;
      if (directory_ == nullptr) {
        owned_directory_ = std::make_unique<DataDirectory>(
            f.structure(), f.kind(), sizeof(T),
            static_cast<int>(options_.hetero.devices.size()));
        directory_ = owned_directory_.get();
      }
    }
  }

  RunStats run() {
    if (directory_ != nullptr) {
      // Before sched_.reset(): a shared directory (dmda placement) may
      // carry residency from a previous run, and reset() already places
      // the initially-ready tasks.  Every run starts host-only.
      directory_->reset();
    }
    sched_.reset();
    const int nr = machine_.num_resources();
    stats_.busy.assign(nr, 0.0);
    idle_wait_.assign(static_cast<std::size_t>(nr), 0.0);
    lock_wait_.assign(static_cast<std::size_t>(nr), 0.0);
    worker_err_.assign(static_cast<std::size_t>(nr), {});
    obs::ScopedSpan run_span;
    SPX_OBS(run_span = obs::ScopedSpan(tracer_, "driver.run", "service-",
                                       options_.instr.parent));
    task_parent_ = run_span.active() ? run_span.context()
                                     : options_.instr.parent;
    if (directory_ != nullptr) {
      stage_wait_.assign(static_cast<std::size_t>(nr), 0.0);
      engines_ = std::make_unique<EngineGroup>(
          machine_, options_.hetero, *directory_, *store_, fault_, registry_,
          tracer_, task_parent_);
    }
    run_clock_.reset();
    Timer wall;
    {
      std::vector<std::jthread> workers;
      workers.reserve(static_cast<std::size_t>(nr));
      for (int r = 0; r < nr; ++r) {
        workers.emplace_back([this, r] { worker_loop(r); });
      }
    }
    stats_.makespan = wall.elapsed();
    if (engines_ != nullptr) {
      // Joining DMA threads drains leftover prefetches; the makespan was
      // already taken at worker join, so that slack is not charged.
      engines_->stop();
      const TransferCounters totals = engines_->totals();
      stats_.bytes_h2d = totals.bytes_h2d;
      stats_.bytes_d2h = totals.bytes_d2h;
      stats_.transfers_h2d = totals.transfers_h2d;
      stats_.transfers_d2h = totals.transfers_d2h;
      stats_.gpu_evictions = totals.evictions;
    }
    run_span.finish();
    stats_.tasks_cpu = tasks_cpu_.load();
    stats_.tasks_gpu = tasks_gpu_.load();
    // Contention observability: scheduler-side counters plus the driver's
    // own idle waits and per-panel lock waits, merged per resource.
    ContentionStats c = sched_.contention();
    const auto n = static_cast<std::size_t>(nr);
    c.lock_wait.resize(n, 0.0);
    c.steals.resize(n, 0);
    c.pops.resize(n, 0);
    c.depth_samples.resize(n, 0);
    c.depth_sum.resize(n, 0.0);
    for (std::size_t r = 0; r < n; ++r) c.lock_wait[r] += lock_wait_[r];
    c.idle_wait = idle_wait_;
    c.stage_wait = stage_wait_;
    stats_.contention = std::move(c);
    for (ModelErrorStats& e : worker_err_) {
      stats_.model_error.panel_rel.insert(stats_.model_error.panel_rel.end(),
                                          e.panel_rel.begin(),
                                          e.panel_rel.end());
      stats_.model_error.update_rel.insert(
          stats_.model_error.update_rel.end(), e.update_rel.begin(),
          e.update_rel.end());
    }
    SPX_OBS(export_run_metrics());
    if (error_) std::rethrow_exception(error_);
    return stats_;
  }

 private:
  // Idle protocol (eventcount): a worker snapshots the generation counter
  // *before* its failed try_pop, then waits until the generation moves.
  // Every completion bumps the generation, so a task that became runnable
  // between the failed pop and the wait flips the predicate -- no lost
  // wakeups and no timed-poll latency floor.  The completion fast path
  // skips the mutex entirely when no worker is parked; the Dekker-style
  // seq_cst ordering between generation_ and sleepers_ makes that safe.
  void worker_loop(int r) {
    Workspace<T> ws, prescale_ws;
    while (!aborted_.load(std::memory_order_acquire)) {
      const std::uint64_t gen = generation_.load();
      Task t;
      bool got = false;
      try {
        got = sched_.try_pop(r, &t);
      } catch (...) {
        record_error();
        break;
      }
      if (!got) {
        if (sched_.finished()) break;
        Timer idle;
        {
          std::unique_lock<std::mutex> lock(wake_mutex_);
          sleepers_.fetch_add(1);
          wake_cv_.wait(lock, [&] {
            return generation_.load() != gen ||
                   aborted_.load(std::memory_order_relaxed);
          });
          sleepers_.fetch_sub(1);
        }
        idle_wait_[static_cast<std::size_t>(r)] += idle.elapsed();
        continue;
      }
      const double t0 = run_clock_.elapsed();
      // Heterogeneous runs stage the task's handles into this resource's
      // memory space before compute and propagate writes after; the
      // classic path (no engines) skips all of it.
      std::vector<index_t> handles;
      if (engines_ != nullptr) {
        handles = task_handles(f_.structure(), sched_.subtree_groups(), t);
        try {
          stage_wait_[static_cast<std::size_t>(r)] +=
              engines_->acquire(r, handles);
        } catch (...) {
          record_error();
          break;
        }
        // Stage the next queued tasks' data while this one computes.
        if (options_.hetero.overlap) pump_prefetch(r);
      }
      double span_start = 0.0;
      SPX_OBS(if (tracer_ != nullptr) span_start = tracer_->now());
      Timer timer;
      try {
        execute(t, r, ws, prescale_ws);
      } catch (...) {
        if (engines_ != nullptr) {
          engines_->release(r, handles, {});  // drop pins, nothing written
        }
        record_error();
        break;
      }
      const double actual = timer.elapsed();
      if (engines_ != nullptr) {
        engines_->release(r, handles, written_handles(t, handles));
      }
      stats_.busy[r] += actual;
      const bool gpu =
          machine_.resource(r).kind == ResourceKind::GpuStream;
      SPX_OBS(metrics_.observe(t, gpu, actual));
      SPX_OBS(if (tracer_ != nullptr) {
        tracer_->record_span(task_kind_name(t.kind), "worker-", task_parent_,
                             span_start, tracer_->now(), r, t.panel, t.edge);
      });
      if (trace_ != nullptr) {
        trace_->record(r, t, t0, run_clock_.elapsed());
      }
      observe_duration(t, r, actual);
      try {
        sched_.on_complete(t, r);
      } catch (...) {
        record_error();
        break;
      }
      bump_generation();
      if (engines_ != nullptr && options_.hetero.overlap) {
        pump_prefetch(r);
      }
    }
    // A worker exiting (finish or error) may be what lets the others
    // observe the end state; wake them unconditionally.
    bump_generation();
  }

  /// Handles task `t` writes (MSI ownership transfer at release): the
  /// factored panel, an update's target, or everything a merged subtree
  /// touched -- mirroring the simulator's complete_task.
  std::vector<index_t> written_handles(const Task& t,
                                       const std::vector<index_t>& handles) {
    if (t.kind == TaskKind::Subtree) return handles;
    if (t.kind == TaskKind::Update) {
      return {f_.structure().targets[t.panel][t.edge].dst};
    }
    return {t.panel};
  }

  /// Transfer-compute overlap: asks the scheduler for queued-not-started
  /// tasks on this resource (each reported once) and starts staging their
  /// handles asynchronously.  Device streams stage H2D; CPU workers
  /// prefetch D2H write-backs of device-dirty panels a queued panel task
  /// will read.  For updates, only the read set moves: the *written*
  /// handle (the target) is usually invalidated again by an earlier
  /// member of its commute group before the task runs, so staging it
  /// early is wasted link time -- acquire fetches it at the last moment.
  /// A ready Panel task, by contrast, has no remaining writers, so its
  /// own panel is safe (and is the point of the CPU-side prefetch).
  void pump_prefetch(int r) {
    Task t;
    for (int i = 0; i < options_.hetero.prefetch_window &&
                    sched_.peek_prefetch(r, &t);
         ++i) {
      std::vector<index_t> handles =
          task_handles(f_.structure(), sched_.subtree_groups(), t);
      if (t.kind != TaskKind::Panel) {
        const std::vector<index_t> written = written_handles(t, handles);
        std::erase_if(handles, [&](index_t h) {
          return std::find(written.begin(), written.end(), h) !=
                 written.end();
        });
      }
      if (!handles.empty()) engines_->prefetch(r, handles);
    }
  }

  void bump_generation() {
    generation_.fetch_add(1);  // seq_cst, ordered against sleepers_
    if (sleepers_.load() == 0) return;
    // Serialize with a parked (or parking) waiter's predicate check so
    // the notify cannot slip between its check and its sleep.
    { std::lock_guard<std::mutex> lock(wake_mutex_); }
    wake_cv_.notify_all();
  }

  void execute(const Task& t, int r, Workspace<T>& ws,
               Workspace<T>& prescale_ws) {
    const Resource& res = machine_.resource(r);
    const UpdateVariant variant = res.kind == ResourceKind::GpuStream
                                      ? UpdateVariant::Direct
                                      : options_.cpu_variant;
    const SymbolicStructure& st = f_.structure();
    double& lock_wait = lock_wait_[static_cast<std::size_t>(r)];
    if (fault_ != nullptr && fault_->on_task_start()) {
      corrupt_pivot(t, lock_wait);
    }
    if (t.kind == TaskKind::Subtree) {
      // Merged bottom subtree: factor + updates of every member, in
      // order.  The per-panel locks protect the external targets against
      // concurrent generic update tasks.
      for (const index_t m : sched_.subtree_groups()->members[t.panel]) {
        factor_panel(f_, m);
        const T* prescaled = nullptr;
        if (f_.kind() == Factorization::LDLT && !st.targets[m].empty()) {
          // Inside a merged task the prescale buffer is task-local, so
          // the fast native-style LDLT path applies.
          prescale_ldlt(f_, m, prescale_ws);
          prescaled = prescale_ws.scaled.data();
        }
        for (const UpdateEdge& e : st.targets[m]) {
          TimedLock lock(panel_locks_[e.dst], lock_wait);
          apply_update(f_, m, e, variant, ws, prescaled);
        }
      }
      tasks_cpu_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    if (t.kind == TaskKind::Panel) {
      factor_panel(f_, t.panel);
      tasks_cpu_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    const UpdateEdge& e = st.targets[t.panel][t.edge];
    const T* prescaled = nullptr;
    if (f_.kind() == Factorization::LDLT && !options_.fused_ldlt) {
      // Reuse of a cross-task prescale buffer is impossible here (the
      // buffer's life span is one task); fall back to prescaling for this
      // task only -- equivalent arithmetic, same cost as fused.
      prescale_ldlt(f_, t.panel, prescale_ws);
      prescaled = prescale_ws.scaled.data();
    }
    // Per-panel lock: the schedulers' commute gating already serializes
    // generic updates into one target, but merged subtree tasks write
    // their external targets outside that protocol.
    TimedLock lock(panel_locks_[e.dst], lock_wait);
    apply_update(f_, t.panel, e, variant, ws, prescaled);
    if (res.kind == ResourceKind::GpuStream) {
      tasks_gpu_.fetch_add(1, std::memory_order_relaxed);
    } else {
      tasks_cpu_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  // Model-accuracy + online-refinement hooks.  Each worker appends to its
  // own ModelErrorStats slot (merged after join, so no locking); the
  // observer is documented thread-safe.  Subtree tasks are skipped: they
  // fuse many panels/updates and have no single-oracle prediction.
  void observe_duration(const Task& t, int r, double actual) {
    if (t.kind == TaskKind::Subtree || actual <= 0.0) return;
    const ResourceKind kind = machine_.resource(r).kind;
    if (options_.observer != nullptr) {
      options_.observer->observe_task(t, kind, actual);
    }
    const TaskCosts* model = options_.error_model;
    if (model == nullptr) return;
    ModelErrorStats& err = worker_err_[static_cast<std::size_t>(r)];
    if (t.kind == TaskKind::Panel) {
      if (kind != ResourceKind::Cpu) return;  // panels are CPU-only
      const double pred = model->panel_seconds(t.panel, kind);
      err.panel_rel.push_back((pred - actual) / actual);
    } else {
      const double pred = model->update_seconds(t.panel, t.edge, kind);
      err.update_rel.push_back((pred - actual) / actual);
    }
  }

  // CorruptPivot fault: zero the leading diagonal entry of the task's
  // target panel under its lock.  For a not-yet-factored panel this
  // plants a (near-)zero pivot for factor_panel to trip over, exercising
  // the perturbation/throw path from a genuinely concurrent context.
  void corrupt_pivot(const Task& t, double& lock_wait) {
    index_t target = t.panel;
    if (t.kind == TaskKind::Update) {
      target = f_.structure().targets[t.panel][t.edge].dst;
    } else if (t.kind == TaskKind::Subtree) {
      target = sched_.subtree_groups()->members[t.panel].front();
    }
    TimedLock lock(panel_locks_[target], lock_wait);
    f_.panel_l(target)[0] = T(0);
  }

  void record_error() {
    bool expected = false;
    if (aborted_.compare_exchange_strong(expected, true)) {
      error_ = std::current_exception();
    }
    bump_generation();
  }

  // Once-per-run registry export of the contention/utilization aggregates
  // (hot paths never touch these series): scheduler-labeled so runs under
  // different runtimes stay distinguishable on one scrape.
  void export_run_metrics() {
    const obs::Labels sched_label = {{"scheduler", sched_.name()}};
    registry_
        .counter("spx_driver_runs_total", "Real-driver executions",
                 sched_label)
        .inc();
    registry_
        .histogram("spx_driver_makespan_seconds",
                   obs::Histogram::duration_bounds(),
                   "Factorization makespan per run", sched_label)
        .observe(stats_.makespan);
    double busy = 0.0;
    for (const double b : stats_.busy) busy += b;
    registry_
        .counter("spx_driver_busy_seconds_total",
                 "Worker seconds spent executing tasks", sched_label)
        .inc(busy);
    const ContentionStats& c = stats_.contention;
    registry_
        .counter("spx_scheduler_steals_total",
                 "Tasks taken from another worker's queue", sched_label)
        .inc(static_cast<double>(c.total_steals()));
    registry_
        .counter("spx_scheduler_pops_total", "Successful try_pop calls",
                 sched_label)
        .inc(static_cast<double>(c.total_pops()));
    registry_
        .counter("spx_scheduler_lock_wait_seconds_total",
                 "Seconds blocked on scheduler and panel locks",
                 sched_label)
        .inc(c.total_lock_wait());
    registry_
        .counter("spx_driver_idle_wait_seconds_total",
                 "Seconds workers spent parked with no runnable task",
                 sched_label)
        .inc(c.total_idle_wait());
  }

  Scheduler& sched_;
  const Machine& machine_;
  FactorData<T>& f_;
  RealDriverOptions options_;
  obs::MetricsRegistry& registry_;
  DriverMetrics metrics_;
  obs::Tracer* tracer_ = nullptr;
  obs::SpanContext task_parent_;   ///< parent of every task span
  TraceRecorder* trace_ = nullptr;  ///< effective legacy trace sink
  FaultInjector* fault_ = nullptr;  ///< effective fault harness
  std::unique_ptr<std::mutex[]> panel_locks_;
  // Heterogeneous-execution state; all null/empty when hetero is off.
  std::unique_ptr<PanelStore> store_;
  std::unique_ptr<DataDirectory> owned_directory_;
  DataDirectory* directory_ = nullptr;  ///< effective coherence directory
  std::unique_ptr<EngineGroup> engines_;
  std::vector<double> stage_wait_;  ///< per-resource staging-block seconds
  Timer run_clock_;
  std::mutex wake_mutex_;
  std::condition_variable wake_cv_;
  std::atomic<std::uint64_t> generation_{0};
  std::atomic<int> sleepers_{0};
  std::atomic<bool> aborted_{false};
  std::atomic<index_t> tasks_cpu_{0};
  std::atomic<index_t> tasks_gpu_{0};
  std::vector<double> idle_wait_;  ///< per-resource, owner-thread written
  std::vector<double> lock_wait_;  ///< per-resource panel-lock waits
  std::vector<ModelErrorStats> worker_err_;  ///< per-resource error samples
  std::exception_ptr error_;
  RunStats stats_;
};

}  // namespace

template <typename T>
RunStats execute_real(Scheduler& scheduler, const Machine& machine,
                      FactorData<T>& f, const RealDriverOptions& options) {
  RealRun<T> run(scheduler, machine, f, options);
  return run.run();
}

template RunStats execute_real<real_t>(Scheduler&, const Machine&,
                                       FactorData<real_t>&,
                                       const RealDriverOptions&);
template RunStats execute_real<complex_t>(Scheduler&, const Machine&,
                                          FactorData<complex_t>&,
                                          const RealDriverOptions&);

}  // namespace spx
