#include "runtime/real_driver.hpp"

#include <atomic>
#include <cmath>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/timer.hpp"
#include "core/codelets.hpp"
#include "runtime/worker_queues.hpp"

namespace spx {
namespace {

const char* task_kind_name(TaskKind k) {
  switch (k) {
    case TaskKind::Panel:
      return "panel";
    case TaskKind::Update:
      return "update";
    case TaskKind::Subtree:
      return "subtree";
  }
  return "?";
}

/// Per-run metric handles, resolved once (registration takes a mutex;
/// the hot path only touches the pre-resolved pointers through SPX_OBS).
struct DriverMetrics {
  obs::Counter* tasks[3][2] = {};  ///< [kind][cpu=0|gpu=1]
  obs::Histogram* seconds[3] = {};  ///< per-kind duration histograms

  explicit DriverMetrics(obs::MetricsRegistry& reg) {
    static constexpr TaskKind kKinds[3] = {TaskKind::Panel, TaskKind::Update,
                                           TaskKind::Subtree};
    for (int k = 0; k < 3; ++k) {
      const char* kind = task_kind_name(kKinds[k]);
      for (int g = 0; g < 2; ++g) {
        tasks[k][g] = &reg.counter(
            "spx_tasks_executed_total", "Tasks executed by the real driver",
            {{"kind", kind}, {"resource", g == 0 ? "cpu" : "gpu"}});
      }
      seconds[k] = &reg.histogram("spx_task_seconds",
                                  obs::Histogram::duration_bounds(),
                                  "Per-task execution wall time",
                                  {{"kind", kind}});
    }
  }

  void observe(const Task& t, bool gpu, double seconds_taken) {
    const int k = static_cast<int>(t.kind);
    tasks[k][gpu ? 1 : 0]->inc();
    seconds[k]->observe(seconds_taken);
  }
};

template <typename T>
class RealRun {
 public:
  RealRun(Scheduler& sched, const Machine& machine, FactorData<T>& f,
          const RealDriverOptions& options)
      : sched_(sched),
        machine_(machine),
        f_(f),
        options_(options),
        registry_(obs::registry_or_global(options.instr.metrics)),
        metrics_(registry_),
        tracer_(options.instr.tracer) {
    // Honor the deprecated trace/fault aliases when the layered field is
    // unset (one-release compatibility; see RealDriverOptions).
    SPX_SUPPRESS_DEPRECATED_BEGIN
    trace_ = options.instr.trace != nullptr ? options.instr.trace
                                            : options.trace;
    fault_ = options.instr.fault != nullptr ? options.instr.fault
                                            : options.fault;
    SPX_SUPPRESS_DEPRECATED_END
    panel_locks_ = std::make_unique<std::mutex[]>(
        static_cast<std::size_t>(f.structure().num_panels()));
  }

  RunStats run() {
    sched_.reset();
    const int nr = machine_.num_resources();
    stats_.busy.assign(nr, 0.0);
    idle_wait_.assign(static_cast<std::size_t>(nr), 0.0);
    lock_wait_.assign(static_cast<std::size_t>(nr), 0.0);
    worker_err_.assign(static_cast<std::size_t>(nr), {});
    obs::ScopedSpan run_span;
    SPX_OBS(run_span = obs::ScopedSpan(tracer_, "driver.run", "service-",
                                       options_.instr.parent));
    task_parent_ = run_span.active() ? run_span.context()
                                     : options_.instr.parent;
    run_clock_.reset();
    Timer wall;
    {
      std::vector<std::jthread> workers;
      workers.reserve(static_cast<std::size_t>(nr));
      for (int r = 0; r < nr; ++r) {
        workers.emplace_back([this, r] { worker_loop(r); });
      }
    }
    stats_.makespan = wall.elapsed();
    run_span.finish();
    stats_.tasks_cpu = tasks_cpu_.load();
    stats_.tasks_gpu = tasks_gpu_.load();
    // Contention observability: scheduler-side counters plus the driver's
    // own idle waits and per-panel lock waits, merged per resource.
    ContentionStats c = sched_.contention();
    const auto n = static_cast<std::size_t>(nr);
    c.lock_wait.resize(n, 0.0);
    c.steals.resize(n, 0);
    c.pops.resize(n, 0);
    c.depth_samples.resize(n, 0);
    c.depth_sum.resize(n, 0.0);
    for (std::size_t r = 0; r < n; ++r) c.lock_wait[r] += lock_wait_[r];
    c.idle_wait = idle_wait_;
    stats_.contention = std::move(c);
    for (ModelErrorStats& e : worker_err_) {
      stats_.model_error.panel_rel.insert(stats_.model_error.panel_rel.end(),
                                          e.panel_rel.begin(),
                                          e.panel_rel.end());
      stats_.model_error.update_rel.insert(
          stats_.model_error.update_rel.end(), e.update_rel.begin(),
          e.update_rel.end());
    }
    SPX_OBS(export_run_metrics());
    if (error_) std::rethrow_exception(error_);
    return stats_;
  }

 private:
  // Idle protocol (eventcount): a worker snapshots the generation counter
  // *before* its failed try_pop, then waits until the generation moves.
  // Every completion bumps the generation, so a task that became runnable
  // between the failed pop and the wait flips the predicate -- no lost
  // wakeups and no timed-poll latency floor.  The completion fast path
  // skips the mutex entirely when no worker is parked; the Dekker-style
  // seq_cst ordering between generation_ and sleepers_ makes that safe.
  void worker_loop(int r) {
    Workspace<T> ws, prescale_ws;
    while (!aborted_.load(std::memory_order_acquire)) {
      const std::uint64_t gen = generation_.load();
      Task t;
      bool got = false;
      try {
        got = sched_.try_pop(r, &t);
      } catch (...) {
        record_error();
        break;
      }
      if (!got) {
        if (sched_.finished()) break;
        Timer idle;
        {
          std::unique_lock<std::mutex> lock(wake_mutex_);
          sleepers_.fetch_add(1);
          wake_cv_.wait(lock, [&] {
            return generation_.load() != gen ||
                   aborted_.load(std::memory_order_relaxed);
          });
          sleepers_.fetch_sub(1);
        }
        idle_wait_[static_cast<std::size_t>(r)] += idle.elapsed();
        continue;
      }
      const double t0 = run_clock_.elapsed();
      double span_start = 0.0;
      SPX_OBS(if (tracer_ != nullptr) span_start = tracer_->now());
      Timer timer;
      try {
        execute(t, r, ws, prescale_ws);
      } catch (...) {
        record_error();
        break;
      }
      const double actual = timer.elapsed();
      stats_.busy[r] += actual;
      const bool gpu =
          machine_.resource(r).kind == ResourceKind::GpuStream;
      SPX_OBS(metrics_.observe(t, gpu, actual));
      SPX_OBS(if (tracer_ != nullptr) {
        tracer_->record_span(task_kind_name(t.kind), "worker-", task_parent_,
                             span_start, tracer_->now(), r, t.panel, t.edge);
      });
      if (trace_ != nullptr) {
        trace_->record(r, t, t0, run_clock_.elapsed());
      }
      observe_duration(t, r, actual);
      try {
        sched_.on_complete(t, r);
      } catch (...) {
        record_error();
        break;
      }
      bump_generation();
    }
    // A worker exiting (finish or error) may be what lets the others
    // observe the end state; wake them unconditionally.
    bump_generation();
  }

  void bump_generation() {
    generation_.fetch_add(1);  // seq_cst, ordered against sleepers_
    if (sleepers_.load() == 0) return;
    // Serialize with a parked (or parking) waiter's predicate check so
    // the notify cannot slip between its check and its sleep.
    { std::lock_guard<std::mutex> lock(wake_mutex_); }
    wake_cv_.notify_all();
  }

  void execute(const Task& t, int r, Workspace<T>& ws,
               Workspace<T>& prescale_ws) {
    const Resource& res = machine_.resource(r);
    const UpdateVariant variant = res.kind == ResourceKind::GpuStream
                                      ? UpdateVariant::Direct
                                      : options_.cpu_variant;
    const SymbolicStructure& st = f_.structure();
    double& lock_wait = lock_wait_[static_cast<std::size_t>(r)];
    if (fault_ != nullptr && fault_->on_task_start()) {
      corrupt_pivot(t, lock_wait);
    }
    if (t.kind == TaskKind::Subtree) {
      // Merged bottom subtree: factor + updates of every member, in
      // order.  The per-panel locks protect the external targets against
      // concurrent generic update tasks.
      for (const index_t m : sched_.subtree_groups()->members[t.panel]) {
        factor_panel(f_, m);
        const T* prescaled = nullptr;
        if (f_.kind() == Factorization::LDLT && !st.targets[m].empty()) {
          // Inside a merged task the prescale buffer is task-local, so
          // the fast native-style LDLT path applies.
          prescale_ldlt(f_, m, prescale_ws);
          prescaled = prescale_ws.scaled.data();
        }
        for (const UpdateEdge& e : st.targets[m]) {
          TimedLock lock(panel_locks_[e.dst], lock_wait);
          apply_update(f_, m, e, variant, ws, prescaled);
        }
      }
      tasks_cpu_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    if (t.kind == TaskKind::Panel) {
      factor_panel(f_, t.panel);
      tasks_cpu_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    const UpdateEdge& e = st.targets[t.panel][t.edge];
    const T* prescaled = nullptr;
    if (f_.kind() == Factorization::LDLT && !options_.fused_ldlt) {
      // Reuse of a cross-task prescale buffer is impossible here (the
      // buffer's life span is one task); fall back to prescaling for this
      // task only -- equivalent arithmetic, same cost as fused.
      prescale_ldlt(f_, t.panel, prescale_ws);
      prescaled = prescale_ws.scaled.data();
    }
    // Per-panel lock: the schedulers' commute gating already serializes
    // generic updates into one target, but merged subtree tasks write
    // their external targets outside that protocol.
    TimedLock lock(panel_locks_[e.dst], lock_wait);
    apply_update(f_, t.panel, e, variant, ws, prescaled);
    if (res.kind == ResourceKind::GpuStream) {
      tasks_gpu_.fetch_add(1, std::memory_order_relaxed);
    } else {
      tasks_cpu_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  // Model-accuracy + online-refinement hooks.  Each worker appends to its
  // own ModelErrorStats slot (merged after join, so no locking); the
  // observer is documented thread-safe.  Subtree tasks are skipped: they
  // fuse many panels/updates and have no single-oracle prediction.
  void observe_duration(const Task& t, int r, double actual) {
    if (t.kind == TaskKind::Subtree || actual <= 0.0) return;
    const ResourceKind kind = machine_.resource(r).kind;
    if (options_.observer != nullptr) {
      options_.observer->observe_task(t, kind, actual);
    }
    const TaskCosts* model = options_.error_model;
    if (model == nullptr) return;
    ModelErrorStats& err = worker_err_[static_cast<std::size_t>(r)];
    if (t.kind == TaskKind::Panel) {
      if (kind != ResourceKind::Cpu) return;  // panels are CPU-only
      const double pred = model->panel_seconds(t.panel, kind);
      err.panel_rel.push_back((pred - actual) / actual);
    } else {
      const double pred = model->update_seconds(t.panel, t.edge, kind);
      err.update_rel.push_back((pred - actual) / actual);
    }
  }

  // CorruptPivot fault: zero the leading diagonal entry of the task's
  // target panel under its lock.  For a not-yet-factored panel this
  // plants a (near-)zero pivot for factor_panel to trip over, exercising
  // the perturbation/throw path from a genuinely concurrent context.
  void corrupt_pivot(const Task& t, double& lock_wait) {
    index_t target = t.panel;
    if (t.kind == TaskKind::Update) {
      target = f_.structure().targets[t.panel][t.edge].dst;
    } else if (t.kind == TaskKind::Subtree) {
      target = sched_.subtree_groups()->members[t.panel].front();
    }
    TimedLock lock(panel_locks_[target], lock_wait);
    f_.panel_l(target)[0] = T(0);
  }

  void record_error() {
    bool expected = false;
    if (aborted_.compare_exchange_strong(expected, true)) {
      error_ = std::current_exception();
    }
    bump_generation();
  }

  // Once-per-run registry export of the contention/utilization aggregates
  // (hot paths never touch these series): scheduler-labeled so runs under
  // different runtimes stay distinguishable on one scrape.
  void export_run_metrics() {
    const obs::Labels sched_label = {{"scheduler", sched_.name()}};
    registry_
        .counter("spx_driver_runs_total", "Real-driver executions",
                 sched_label)
        .inc();
    registry_
        .histogram("spx_driver_makespan_seconds",
                   obs::Histogram::duration_bounds(),
                   "Factorization makespan per run", sched_label)
        .observe(stats_.makespan);
    double busy = 0.0;
    for (const double b : stats_.busy) busy += b;
    registry_
        .counter("spx_driver_busy_seconds_total",
                 "Worker seconds spent executing tasks", sched_label)
        .inc(busy);
    const ContentionStats& c = stats_.contention;
    registry_
        .counter("spx_scheduler_steals_total",
                 "Tasks taken from another worker's queue", sched_label)
        .inc(static_cast<double>(c.total_steals()));
    registry_
        .counter("spx_scheduler_pops_total", "Successful try_pop calls",
                 sched_label)
        .inc(static_cast<double>(c.total_pops()));
    registry_
        .counter("spx_scheduler_lock_wait_seconds_total",
                 "Seconds blocked on scheduler and panel locks",
                 sched_label)
        .inc(c.total_lock_wait());
    registry_
        .counter("spx_driver_idle_wait_seconds_total",
                 "Seconds workers spent parked with no runnable task",
                 sched_label)
        .inc(c.total_idle_wait());
  }

  Scheduler& sched_;
  const Machine& machine_;
  FactorData<T>& f_;
  RealDriverOptions options_;
  obs::MetricsRegistry& registry_;
  DriverMetrics metrics_;
  obs::Tracer* tracer_ = nullptr;
  obs::SpanContext task_parent_;   ///< parent of every task span
  TraceRecorder* trace_ = nullptr;  ///< effective legacy trace sink
  FaultInjector* fault_ = nullptr;  ///< effective fault harness
  std::unique_ptr<std::mutex[]> panel_locks_;
  Timer run_clock_;
  std::mutex wake_mutex_;
  std::condition_variable wake_cv_;
  std::atomic<std::uint64_t> generation_{0};
  std::atomic<int> sleepers_{0};
  std::atomic<bool> aborted_{false};
  std::atomic<index_t> tasks_cpu_{0};
  std::atomic<index_t> tasks_gpu_{0};
  std::vector<double> idle_wait_;  ///< per-resource, owner-thread written
  std::vector<double> lock_wait_;  ///< per-resource panel-lock waits
  std::vector<ModelErrorStats> worker_err_;  ///< per-resource error samples
  std::exception_ptr error_;
  RunStats stats_;
};

}  // namespace

template <typename T>
RunStats execute_real(Scheduler& scheduler, const Machine& machine,
                      FactorData<T>& f, const RealDriverOptions& options) {
  RealRun<T> run(scheduler, machine, f, options);
  return run.run();
}

template RunStats execute_real<real_t>(Scheduler&, const Machine&,
                                       FactorData<real_t>&,
                                       const RealDriverOptions&);
template RunStats execute_real<complex_t>(Scheduler&, const Machine&,
                                          FactorData<complex_t>&,
                                          const RealDriverOptions&);

}  // namespace spx
