#include "runtime/fault_injection.hpp"

#include <chrono>
#include <thread>

#include "obs/obs.hpp"

namespace spx {

namespace {

// Fired faults land in the global registry, labeled by action: the fault
// sites are process-rare events, not hot paths, so the registration
// lookup per fire is fine.
void count_fired(FaultAction a) {
  SPX_OBS(obs::MetricsRegistry::global()
              .counter("spx_faults_injected_total",
                       "Armed faults that actually fired",
                       {{"action", to_string(a)}})
              .inc());
}

}  // namespace

const char* to_string(FaultAction a) {
  switch (a) {
    case FaultAction::None: return "none";
    case FaultAction::Throw: return "throw";
    case FaultAction::Stall: return "stall";
    case FaultAction::CorruptPivot: return "corrupt-pivot";
    case FaultAction::AllocFail: return "alloc-fail";
    case FaultAction::StallTransfer: return "stall-transfer";
    case FaultAction::DropFrame: return "drop-frame";
    case FaultAction::TruncateFrame: return "truncate-frame";
    case FaultAction::DelayFrame: return "delay-frame";
    case FaultAction::CorruptFrame: return "corrupt-frame";
    case FaultAction::AbortConnection: return "abort-connection";
  }
  return "?";
}

bool is_wire_fault(FaultAction a) {
  switch (a) {
    case FaultAction::DropFrame:
    case FaultAction::TruncateFrame:
    case FaultAction::DelayFrame:
    case FaultAction::CorruptFrame:
    case FaultAction::AbortConnection:
      return true;
    default:
      return false;
  }
}

namespace {

// splitmix64: tiny, high-quality mixer; enough to spread seeds over the
// task-ordinal range without dragging in <random>.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

FaultPlan FaultPlan::nth_task(FaultAction a, std::uint64_t n, double stall) {
  FaultPlan p;
  p.action = a;
  p.victim = n;
  p.stall_seconds = stall;
  return p;
}

FaultPlan FaultPlan::seeded(FaultAction a, std::uint64_t seed,
                            std::uint64_t ntasks, double stall) {
  return nth_task(a, ntasks == 0 ? 0 : mix64(seed) % ntasks, stall);
}

bool FaultInjector::on_task_start() {
  const std::uint64_t ord = started_.fetch_add(1, std::memory_order_relaxed);
  if (ord != plan_.victim) return false;
  switch (plan_.action) {
    case FaultAction::Throw:
      fired_.fetch_add(1, std::memory_order_relaxed);
      count_fired(plan_.action);
      throw InjectedFault("injected fault at task ordinal " +
                          std::to_string(ord));
    case FaultAction::Stall:
      fired_.fetch_add(1, std::memory_order_relaxed);
      count_fired(plan_.action);
      std::this_thread::sleep_for(
          std::chrono::duration<double>(plan_.stall_seconds));
      return false;
    case FaultAction::CorruptPivot:
      fired_.fetch_add(1, std::memory_order_relaxed);
      count_fired(plan_.action);
      return true;
    default:
      return false;
  }
}

FaultAction FaultInjector::on_wire_frame() {
  const std::uint64_t ord =
      wire_frames_.fetch_add(1, std::memory_order_relaxed);
  if (!is_wire_fault(plan_.action) || ord != plan_.victim) {
    return FaultAction::None;
  }
  fired_.fetch_add(1, std::memory_order_relaxed);
  count_fired(plan_.action);
  return plan_.action;
}

void FaultInjector::on_transfer_start() {
  const std::uint64_t ord =
      transfers_started_.fetch_add(1, std::memory_order_relaxed);
  if (plan_.action != FaultAction::StallTransfer || ord != plan_.victim) {
    return;
  }
  fired_.fetch_add(1, std::memory_order_relaxed);
  count_fired(plan_.action);
  std::this_thread::sleep_for(
      std::chrono::duration<double>(plan_.stall_seconds));
}

bool FaultInjector::fail_alloc(std::size_t /*bytes*/) {
  if (plan_.action != FaultAction::AllocFail) return false;
  // Factorize performs one factor allocation per attempt, so under
  // AllocFail the first allocation after (re)arming is the victim.
  if (started_.fetch_add(1, std::memory_order_relaxed) != 0) return false;
  fired_.fetch_add(1, std::memory_order_relaxed);
  count_fired(plan_.action);
  return true;
}

}  // namespace spx
