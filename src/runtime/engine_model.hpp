// Shared engine/stream/transfer model for the simulator and the real
// heterogeneous driver.
//
// Both drivers describe an accelerator the same way (EngineSpec: stream
// count, link bandwidth/latency, device memory capacity), track its
// resident set the same way (DeviceLru), and enumerate the data handles a
// task touches the same way (task_handles).  Keeping this model in one
// header is what makes the scheduler-parity tests meaningful: a dmda
// decision validated under sim::simulate and one made by execute_real
// with emulated engines are driven by the same residency/transfer
// arithmetic (docs/DEVICE_ENGINES.md).
#pragma once

#include <list>
#include <map>
#include <vector>

#include "common/error.hpp"
#include "runtime/subtree_merge.hpp"
#include "runtime/task.hpp"

namespace spx {

class DataDirectory;

/// Description of one accelerator-class engine: how many concurrent
/// kernel streams it exposes and the staging-link characteristics the
/// emulation (or a future CUDA backend) must honor.
struct EngineSpec {
  /// Concurrent kernel slots; each becomes one GpuStream resource.
  int streams = 1;
  /// Emulated host<->device link bandwidth (both directions).
  double bandwidth_gbps = 8.0;
  /// Fixed per-transfer setup latency (seconds), the dominant cost for
  /// the paper's many-small-panel workloads.
  double latency_seconds = 100e-6;
  /// Device memory capacity; staging beyond it triggers LRU eviction
  /// (with D2H write-back for dirty panels).
  double memory_bytes = 256.0 * 1024 * 1024;

  /// Seconds to move `bytes` across this engine's link.
  double transfer_seconds(double bytes) const {
    return latency_seconds + bytes / (bandwidth_gbps * 1e9);
  }
};

/// Heterogeneous-execution configuration for the real driver: one
/// EngineSpec per emulated accelerator, appended after the CPU worker
/// pool (engine 0).  Empty `devices` = the classic CPU-only driver with
/// no staging machinery (zero overhead on that path).
struct HeteroOptions {
  std::vector<EngineSpec> devices;
  /// Transfer-compute overlap: prefetch queued tasks' data (via
  /// Scheduler::peek_prefetch) while streams compute.  Off = every
  /// device task stalls for its own staging at start (the paper's
  /// no-overlap baseline, bench_hetero's ablation axis).
  bool overlap = true;
  /// Queued tasks to prefetch ahead per stream (StarPU uses 2).
  int prefetch_window = 2;
  /// Coherence directory shared with a model-based scheduler (dmda), so
  /// placement estimates see the true residency; the driver owns one
  /// internally when null.  Must outlive the run when set.
  DataDirectory* directory = nullptr;

  bool enabled() const { return !devices.empty(); }
  /// Common stream count of all engines (the Machine resource grid is
  /// uniform); throws InvalidArgument when specs disagree.
  int uniform_streams() const {
    int s = devices.empty() ? 1 : devices.front().streams;
    for (const EngineSpec& d : devices) {
      SPX_CHECK_ARG(d.streams == s,
                    "all device engines must expose the same stream count");
    }
    return s;
  }
};

/// LRU resident-set tracker for one device's memory: which panels are
/// materialized on the device, in recency order, with pin counts
/// protecting panels staged for (or used by) in-flight tasks.  Shared by
/// the simulator's DeviceMemory model and the real emulated engine's
/// staging arena; eviction policy (clean-first, write-back for dirty) is
/// the caller's, via eviction_victim's predicate.
class DeviceLru {
 public:
  explicit DeviceLru(double capacity) : capacity_(capacity) {}

  bool resident(index_t p) const { return pos_.count(p) != 0; }

  /// Adds (or refreshes) p with its byte size; caller checks capacity.
  void insert(index_t p, double bytes) {
    if (resident(p)) {
      touch(p);
      return;
    }
    lru_.emplace_front(p, bytes);
    pos_[p] = lru_.begin();
    used_ += bytes;
  }

  /// Moves p to most-recently-used (no-op when absent).
  void touch(index_t p) {
    const auto it = pos_.find(p);
    if (it == pos_.end()) return;
    lru_.splice(lru_.begin(), lru_, it->second);
  }

  void remove(index_t p) {
    const auto it = pos_.find(p);
    if (it == pos_.end()) return;
    used_ -= it->second->second;
    lru_.erase(it->second);
    pos_.erase(it);
  }

  void pin(index_t p) { pins_[p]++; }
  void unpin(index_t p) {
    const auto it = pins_.find(p);
    if (it != pins_.end() && --it->second == 0) pins_.erase(it);
  }
  bool pinned(index_t p) const { return pins_.count(p) != 0; }

  double used() const { return used_; }
  double capacity() const { return capacity_; }

  /// Least-recently-used unpinned panel satisfying `evictable`, or -1.
  template <typename Pred>
  index_t eviction_victim(Pred&& evictable) const {
    for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) {
      if (!pinned(it->first) && evictable(it->first)) return it->first;
    }
    return -1;
  }

 private:
  double capacity_;
  double used_ = 0.0;
  std::list<std::pair<index_t, double>> lru_;
  std::map<index_t, std::list<std::pair<index_t, double>>::iterator> pos_;
  std::map<index_t, int> pins_;
};

/// The panel handles task `t` reads or writes, deduplicated: the panel
/// itself for a factor task, {source, target} for an update, and every
/// member plus external targets for a merged subtree (whose group lists
/// come from `groups`; may be null when the scheduler never emits
/// Subtree tasks).  Both drivers stage exactly this set.
std::vector<index_t> task_handles(const SymbolicStructure& st,
                                  const SubtreeGroups* groups,
                                  const Task& t);

}  // namespace spx
