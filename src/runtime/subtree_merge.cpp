#include "runtime/subtree_merge.hpp"

#include <algorithm>

namespace spx {
namespace {

/// Sequential 1D work of a panel: factor + all its updates on a CPU.
double panel_1d_seconds(const SymbolicStructure& st, const TaskCosts& costs,
                        index_t p) {
  double d = costs.panel_seconds(p, ResourceKind::Cpu);
  for (index_t e = 0; e < static_cast<index_t>(st.targets[p].size()); ++e) {
    d += costs.update_seconds(p, e, ResourceKind::Cpu);
  }
  return d;
}

}  // namespace

SubtreeGroups merge_subtrees(const SymbolicStructure& st,
                             const TaskCosts& costs, double max_seconds) {
  const index_t np = st.num_panels();
  SubtreeGroups groups;
  groups.root_of.resize(static_cast<std::size_t>(np));
  groups.members.assign(static_cast<std::size_t>(np), {});
  for (index_t p = 0; p < np; ++p) groups.root_of[p] = p;
  if (max_seconds <= 0.0 || np == 0) return groups;

  // Panel tree: parent = lowest panel this one updates.  Its subtrees are
  // exactly the DAG-predecessor closures (verified below), because update
  // targets always lie on the ancestor chain.
  std::vector<index_t> parent(static_cast<std::size_t>(np), -1);
  for (index_t p = 0; p < np; ++p) {
    if (!st.targets[p].empty()) parent[p] = st.targets[p].front().dst;
  }
  // Subtree work, bottom-up (panels are topologically ordered by id).
  std::vector<double> work(static_cast<std::size_t>(np));
  for (index_t p = 0; p < np; ++p) {
    work[p] = panel_1d_seconds(st, costs, p);
  }
  for (index_t p = 0; p < np; ++p) {
    if (parent[p] != -1) work[parent[p]] += work[p];
  }

  // Maximal roots: subtree fits the budget, parent's does not.
  std::vector<std::vector<index_t>> children(static_cast<std::size_t>(np));
  for (index_t p = 0; p < np; ++p) {
    if (parent[p] != -1) children[parent[p]].push_back(p);
  }
  std::vector<index_t> stack;
  for (index_t root = 0; root < np; ++root) {
    if (work[root] > max_seconds) continue;
    if (parent[root] != -1 && work[parent[root]] <= max_seconds) continue;
    // Collect the subtree in ascending order (== topological order).
    std::vector<index_t> members;
    stack.assign(1, root);
    while (!stack.empty()) {
      const index_t v = stack.back();
      stack.pop_back();
      members.push_back(v);
      for (const index_t c : children[v]) stack.push_back(c);
    }
    if (members.size() < 2) continue;  // nothing to merge
    std::sort(members.begin(), members.end());
    for (const index_t m : members) groups.root_of[m] = root;
    groups.members[root] = std::move(members);
    groups.num_groups++;
  }

  // Completeness check: no update edge may enter a group from outside
  // (otherwise the one-shot group task would violate a dependency).
  for (index_t p = 0; p < np; ++p) {
    for (const UpdateEdge& e : st.targets[p]) {
      const index_t dr = groups.root_of[e.dst];
      if (!groups.members[dr].empty()) {
        SPX_ASSERT(groups.root_of[p] == dr &&
                   "incomplete subtree group: external edge enters group");
      }
    }
  }
  return groups;
}

}  // namespace spx
