// Pluggable device engines for the real (threaded) execution driver.
//
// The real driver executes tasks on a grid of resources (Machine): CPU
// workers first, then one resource per accelerator *stream*.  Each
// resource belongs to exactly one DeviceEngine, which owns that memory
// space's side of the coherence protocol:
//
//   * CpuEngine (engine 0) -- the host memory space behind the existing
//     CPU worker pool.  Host memory is the home location; acquiring a
//     handle whose only authoritative copy is device-dirty triggers a
//     D2H write-back through the owning engine.
//   * EmulatedAcceleratorEngine (engines 1..N) -- an accelerator
//     emulated on the host: a dedicated DMA thread drains a FIFO of
//     transfer tasks, each throttled to the EngineSpec's bandwidth and
//     latency before performing a real staging memcpy between the
//     factor panels and a per-device arena; an LRU over the arena evicts
//     clean panels (and write-back dirty ones) under memory pressure.
//     Stream workers block in acquire() until their task's handles are
//     resident, so the full placement/transfer/stream machinery of a
//     hybrid run is exercised -- and unit-testable -- on any host.
//   * A real CUDA engine is a future third implementation of the same
//     interface (docs/ARCHITECTURE.md, "adding a backend").
//
// Compute itself stays in the driver (it is templated on the scalar
// type); engines are type-erased and see panels only as byte ranges
// through PanelStore.  Every staging memcpy runs under the panel's
// driver-side lock together with its directory update, which is what
// keeps a prefetch racing a concurrent writer coherent.
#pragma once

#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/obs.hpp"
#include "runtime/data_directory.hpp"
#include "runtime/engine_model.hpp"
#include "runtime/fault_injection.hpp"
#include "runtime/machine.hpp"

namespace spx {

/// Type-erased byte view of the factor panels, implemented by the driver
/// over FactorData<T>.  read/write must copy under the panel's lock so
/// staging never tears against a concurrent panel writer.
class PanelStore {
 public:
  virtual ~PanelStore() = default;
  /// Staged size of panel p in bytes (L, plus U for LU).
  virtual std::size_t panel_bytes(index_t p) const = 0;
  /// Copies the panel's current host bytes into `dst`.
  virtual void read_panel(index_t p, std::byte* dst) const = 0;
  /// Overwrites the panel's host bytes from `src`.
  virtual void write_panel(index_t p, const std::byte* src) = 0;
  /// The driver-side lock serializing writers of panel p; staging
  /// memcpys and their directory updates run under it.
  virtual std::mutex& panel_mutex(index_t p) const = 0;
};

/// Per-engine transfer accounting, merged into RunStats after the run.
struct TransferCounters {
  double bytes_h2d = 0.0;
  double bytes_d2h = 0.0;
  index_t transfers_h2d = 0;
  index_t transfers_d2h = 0;
  index_t evictions = 0;

  TransferCounters& operator+=(const TransferCounters& o) {
    bytes_h2d += o.bytes_h2d;
    bytes_d2h += o.bytes_d2h;
    transfers_h2d += o.transfers_h2d;
    transfers_d2h += o.transfers_d2h;
    evictions += o.evictions;
    return *this;
  }
};

/// Completion handle of one asynchronous transfer task.
class TransferTicket {
 public:
  void wait();
  void complete();
  bool done() const;

 private:
  mutable std::mutex m_;
  std::condition_variable cv_;
  bool done_ = false;
};

class EngineGroup;

/// One memory space plus the machinery to move panel data in and out of
/// it.  Implementations are internally synchronized; acquire/release/
/// prefetch are called concurrently from the streams' worker threads.
class DeviceEngine {
 public:
  virtual ~DeviceEngine() = default;

  /// Engine name for traces and docs ("cpu", "emu"; "cuda" later).
  virtual const char* name() const = 0;
  /// Resource class of this engine's streams.
  virtual ResourceKind resource_kind() const = 0;
  /// Worker threads (CPU) or kernel streams (accelerator) it serves.
  virtual int num_streams() const = 0;

  /// Spawns engine-owned service threads (DMA); paired with stop().
  virtual void start() {}
  /// Drains and joins engine-owned threads; engines outlive workers.
  virtual void stop() {}

  /// Blocking: makes every handle readable (and writable) in this
  /// engine's memory space; returns seconds spent blocked on transfers.
  virtual double acquire(const std::vector<index_t>& handles) = 0;
  /// Post-execution protocol step: `written` handles invalidate all
  /// other copies (MSI write), pins taken by acquire are dropped.
  virtual void release(const std::vector<index_t>& handles,
                       const std::vector<index_t>& written) = 0;
  /// Asynchronous, best-effort: starts staging `handles` toward this
  /// engine so a later acquire finds them resident (transfer-compute
  /// overlap).  Default: no-op.
  virtual void prefetch(const std::vector<index_t>& handles) {
    (void)handles;
  }
  /// Makes the *host* copy of p valid again (D2H write-back of a dirty
  /// copy this engine owns); null when nothing needs to move.  `demand`
  /// jobs jump ahead of speculative (prefetch-issued) ones in the DMA
  /// queue -- a blocked worker must never wait behind a speculation.
  virtual std::shared_ptr<TransferTicket> request_writeback(index_t p,
                                                            bool demand) {
    (void)p;
    (void)demand;
    return nullptr;
  }

  /// Transfer totals since construction (quiescent read after stop()).
  virtual TransferCounters counters() const { return {}; }
};

/// The engine set behind one real-driver run: engine 0 is the CPU pool's
/// host space, engines 1..N the emulated accelerators, with resource ids
/// mapped exactly like Machine lays them out.  Owns the cross-engine
/// routing (host acquire of a device-dirty handle) and the aggregate
/// counters; the driver calls the per-resource entry points below from
/// its worker threads.
class EngineGroup {
 public:
  /// `directory` and `store` must outlive the group; `fault`, `tracer`
  /// may be null.  Builds one CpuEngine plus one emulated engine per
  /// HeteroOptions device; machine.num_gpus() must match.
  EngineGroup(const Machine& machine, const HeteroOptions& options,
              DataDirectory& directory, PanelStore& store,
              FaultInjector* fault, obs::MetricsRegistry& registry,
              obs::Tracer* tracer, obs::SpanContext parent);
  ~EngineGroup();

  /// Blocking staging for a task about to run on `resource`; returns
  /// seconds the worker spent blocked on transfers.
  double acquire(int resource, const std::vector<index_t>& handles);
  void release(int resource, const std::vector<index_t>& handles,
               const std::vector<index_t>& written);
  void prefetch(int resource, const std::vector<index_t>& handles);

  /// Joins every engine's service threads (call after workers joined).
  void stop();

  /// Cross-engine routing: asks whichever engine owns the authoritative
  /// (dirty) copy of p to write it back; null when the host is already
  /// valid.  Engines call this for two-hop device->host->device paths;
  /// the CPU engine's prefetch issues it speculatively (demand = false).
  std::shared_ptr<TransferTicket> request_host_copy(index_t p,
                                                    bool demand = true);

  DeviceEngine& engine_of(int resource);
  const HeteroOptions& options() const { return options_; }
  /// Aggregate transfer counters across engines (after stop()).
  TransferCounters totals() const;

 private:
  const Machine* machine_;
  HeteroOptions options_;
  DataDirectory* directory_;
  std::vector<std::unique_ptr<DeviceEngine>> engines_;
};

/// HeteroOptions overridden by the SPX_HETERO_* environment knobs
/// (documented in docs/DEVICE_ENGINES.md): _ENGINES, _STREAMS, _BW_GBPS,
/// _LATENCY_US, _MEM_MB, _OVERLAP.  Unset variables keep `base` values.
HeteroOptions hetero_from_env(HeteroOptions base = {});

}  // namespace spx
