#include "runtime/run_stats.hpp"

#include "common/json.hpp"

namespace spx {

json::Value to_json(const RunStats& stats) {
  json::Value v = json::Value::object();
  v.set("makespan_s", json::Value(stats.makespan));
  v.set("gflops", json::Value(stats.gflops));
  v.set("tasks_cpu", json::Value(static_cast<double>(stats.tasks_cpu)));
  v.set("tasks_gpu", json::Value(static_cast<double>(stats.tasks_gpu)));
  v.set("busy_fraction", json::Value(stats.busy_fraction()));
  if (stats.bytes_h2d > 0 || stats.bytes_d2h > 0) {
    v.set("bytes_h2d", json::Value(stats.bytes_h2d));
    v.set("bytes_d2h", json::Value(stats.bytes_d2h));
  }
  if (!stats.contention.lock_wait.empty() ||
      !stats.contention.idle_wait.empty()) {
    json::Value c = json::Value::object();
    c.set("lock_wait_s", json::Value(stats.contention.total_lock_wait()));
    c.set("idle_wait_s", json::Value(stats.contention.total_idle_wait()));
    c.set("steals", json::Value(
                        static_cast<double>(stats.contention.total_steals())));
    c.set("pops",
          json::Value(static_cast<double>(stats.contention.total_pops())));
    v.set("contention", std::move(c));
  }
  v.set("degraded", json::Value(stats.quality.degraded()));
  if (stats.quality.threshold > 0 || stats.quality.degraded()) {
    v.set("quality", to_json(stats.quality));
  }
  if (!stats.model_error.empty()) {
    json::Value m = json::Value::object();
    m.set("median_panel", json::Value(stats.model_error.median_panel()));
    m.set("median_update", json::Value(stats.model_error.median_update()));
    m.set("bias_panel", json::Value(stats.model_error.bias_panel()));
    m.set("bias_update", json::Value(stats.model_error.bias_update()));
    v.set("model_error", std::move(m));
  }
  return v;
}

}  // namespace spx
