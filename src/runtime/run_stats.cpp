#include "runtime/run_stats.hpp"

namespace spx {

void RunStats::export_json(obs::JsonWriter& w) const {
  w.field("makespan_s", makespan)
      .field("gflops", gflops)
      .field("tasks_cpu", tasks_cpu)
      .field("tasks_gpu", tasks_gpu)
      .field("busy_fraction", busy_fraction());
  if (bytes_h2d > 0 || bytes_d2h > 0) {
    w.field("bytes_h2d", bytes_h2d).field("bytes_d2h", bytes_d2h);
  }
  if (transfers_h2d > 0 || transfers_d2h > 0) {
    w.field("transfers_h2d", transfers_h2d)
        .field("transfers_d2h", transfers_d2h);
  }
  if (gpu_evictions > 0) {
    w.field("gpu_evictions", gpu_evictions);
  }
  if (!contention.lock_wait.empty() || !contention.idle_wait.empty()) {
    w.object("contention", [&](obs::JsonWriter& c) {
      c.field("lock_wait_s", contention.total_lock_wait())
          .field("idle_wait_s", contention.total_idle_wait())
          .field("steals", contention.total_steals())
          .field("pops", contention.total_pops());
      if (!contention.stage_wait.empty()) {
        c.field("stage_wait_s", contention.total_stage_wait());
      }
    });
  }
  if (!kernel_isa.empty()) {
    w.field("kernel_isa", kernel_isa).field("kernel_blas", kernel_blas);
  }
  w.field("degraded", quality.degraded());
  if (quality.threshold > 0 || quality.degraded()) {
    w.object("quality", quality);
  }
  if (!model_error.empty()) {
    w.object("model_error", [&](obs::JsonWriter& m) {
      m.field("median_panel", model_error.median_panel())
          .field("median_update", model_error.median_update())
          .field("bias_panel", model_error.bias_panel())
          .field("bias_update", model_error.bias_update());
    });
  }
}

json::Value to_json(const RunStats& stats) { return obs::to_json(stats); }

}  // namespace spx
