// Real (threaded) execution driver.
//
// Runs a Scheduler with actual worker threads executing the numerical
// codelets on the factor data.  GPU-stream resources are emulated by
// ordinary threads running the buffer-free (Direct) update kernel -- the
// code path a device would run -- against unified memory.
//
// With RealDriverOptions::hetero populated, the run additionally routes
// every task through the pluggable device-engine layer
// (runtime/device_engine.hpp): workers acquire their task's handles from
// the engine owning their resource (blocking on throttled staging
// transfers), release them afterwards (MSI write propagation), and pump
// prefetches for queued device tasks so transfers overlap compute.  With
// `hetero` empty this path compiles out to the classic CPU/unified
// driver with zero per-task overhead.
//
// Thread-safety contract: the generic schedulers serialize updates into
// the same panel via their commute gating; the native scheduler's fused
// 1D tasks update many panels, so this driver takes a per-panel lock
// around each scatter exactly like PASTIX's shared-memory code does.
// Device engines reuse the same per-panel locks for staging memcpys.
#pragma once

#include "core/codelets.hpp"
#include "obs/obs.hpp"
#include "obs/options.hpp"
#include "runtime/engine_model.hpp"
#include "runtime/fault_injection.hpp"
#include "runtime/run_stats.hpp"
#include "runtime/scheduler.hpp"
#include "runtime/trace.hpp"

namespace spx {

struct RealDriverOptions {
  /// Update kernel path for CPU workers (GPU streams always use Direct).
  UpdateVariant cpu_variant = UpdateVariant::TempBuffer;
  /// Generic-runtime LDL^T (per-update rescale).  The native scheduler's
  /// fused tasks always prescale, regardless of this flag.
  bool fused_ldlt = true;
  /// Instrumentation layer: metrics registry, span tracer + parent
  /// context, legacy chrome-trace recorder, and the fault harness.  All
  /// sinks must outlive the run.  Usually inherited from SolverOptions
  /// (which inherits it from OptionsBuilder) rather than set here.
  obs::InstrumentationOptions instr;
  /// Optional cost oracle compared against measured durations to fill
  /// RunStats::model_error (Panel/Update tasks only; Subtree tasks have no
  /// single-oracle prediction).  Must outlive the run.
  const TaskCosts* error_model = nullptr;
  /// Optional per-task duration sink -- the online-refinement hook (e.g.
  /// perfmodel::ModelRefiner).  Called from worker threads; must be
  /// thread-safe and outlive the run.
  TaskDurationObserver* observer = nullptr;
  /// Heterogeneous execution: one emulated accelerator engine per entry
  /// in `hetero.devices`, matching the Machine's GPU count.  Empty =
  /// classic unified-memory driver, no staging machinery at all.
  HeteroOptions hetero;
};

/// Factorizes `f` in place under `scheduler`; spawns one thread per
/// machine resource.  Rethrows the first codelet exception.
template <typename T>
RunStats execute_real(Scheduler& scheduler, const Machine& machine,
                      FactorData<T>& f,
                      const RealDriverOptions& options = {});

extern template RunStats execute_real<real_t>(Scheduler&, const Machine&,
                                              FactorData<real_t>&,
                                              const RealDriverOptions&);
extern template RunStats execute_real<complex_t>(Scheduler&, const Machine&,
                                                 FactorData<complex_t>&,
                                                 const RealDriverOptions&);

}  // namespace spx
