// The native PASTIX-style scheduler.
//
// PASTIX's historical unit is the 1D task -- one panel's factorization
// plus all the updates it generates -- mapped by a *static* cost-model
// schedule computed during the analyze phase, refined at execution time by
// work stealing (the dynamic scheduler of Faverge & Ramet, the paper's
// ref [1]).  The multicore refinement the paper describes in §V
// ("dynamically splits update tasks, so that the critical path of the
// algorithm can be reduced") releases each update as its own unit: a
// panel's factor and updates still run back-to-back on their assigned
// worker (preserving the LDL^T prescale-buffer locality that makes native
// LDL^T faster than the generic runtimes), but successors are released as
// soon as *their* update lands, not when the whole 1D task ends, and idle
// workers can steal individual units.
//
// CPU-only by design: the paper uses native PASTIX as the CPU reference
// and never drives GPUs with it.
//
// Concurrency: each worker's static queue is a shard with its own lock
// (stealing locks only the victim's shard); dependency counters, factor
// state, and commute claims are atomics, so on_complete is entirely
// lock-free.  Victim selection reads per-shard atomic backlog hints and
// orders candidates with sort_steal_victims (signed, deterministic).
#pragma once

#include <atomic>
#include <memory>
#include <mutex>

#include "runtime/scheduler.hpp"
#include "runtime/worker_queues.hpp"

namespace spx {

struct NativeOptions {
  /// Static mapping strategy of the analyze phase: cost-model list
  /// scheduling (earliest completion, the default) or PASTIX's classic
  /// proportional subtree mapping (better locality, see dist/mapping.hpp).
  enum class Mapping { ListSchedule, Proportional };
  Mapping mapping = Mapping::ListSchedule;
};

class NativeScheduler : public Scheduler {
 public:
  NativeScheduler(const TaskTable& table, const Machine& machine,
                  const TaskCosts& costs, NativeOptions options = {});

  void reset() override;
  bool try_pop(int resource, Task* out) override;
  void on_complete(const Task& task, int resource) override;
  bool finished() const override;
  std::string name() const override { return "native"; }

  /// Estimated makespan of the static schedule (analyze-phase estimate,
  /// at 1D-task granularity).
  double static_makespan() const { return static_makespan_; }
  /// Units executed by a worker other than the statically assigned one.
  index_t steal_count() const;
  ContentionStats contention() const override { return counters_.snapshot(); }

 private:
  /// A worker's view of its static queue.  head/pending_edges_ of the
  /// panels in this queue are guarded by m; unconsumed is a lock-free
  /// backlog hint for steal-victim selection.
  struct alignas(64) Shard {
    std::mutex m;
    std::size_t head = 0;               ///< consumed prefix of the queue
    std::atomic<index_t> unconsumed{0}; ///< panels at or past head
  };

  void compute_static_schedule();
  /// Finds a dispatchable unit in worker w's static queue; returns false
  /// when none.  Caller holds shard w's lock.
  bool pop_from(int w, Task* out);

  const TaskTable* table_;
  const Machine* machine_;
  const TaskCosts* costs_;
  NativeOptions options_;

  /// Static assignment: per-worker ordered panel list.
  std::vector<std::vector<index_t>> static_queue_;
  double static_makespan_ = 0.0;

  std::unique_ptr<Shard[]> shards_;
  AtomicCounters remaining_in_;            ///< pending updates into panel
  std::unique_ptr<std::atomic<char>[]> factor_taken_;
  std::unique_ptr<std::atomic<char>[]> factor_done_;
  /// Update edges of each panel not yet dispatched (guarded by the shard
  /// lock of the panel's statically assigned worker).
  std::vector<std::vector<index_t>> pending_edges_;
  /// Commute exclusion on update targets.
  std::unique_ptr<std::atomic<char>[]> target_busy_;
  std::atomic<index_t> completed_{0};
  CounterBank counters_;
};

}  // namespace spx
