// The native PASTIX-style scheduler.
//
// PASTIX's historical unit is the 1D task -- one panel's factorization
// plus all the updates it generates -- mapped by a *static* cost-model
// schedule computed during the analyze phase, refined at execution time by
// work stealing (the dynamic scheduler of Faverge & Ramet, the paper's
// ref [1]).  The multicore refinement the paper describes in §V
// ("dynamically splits update tasks, so that the critical path of the
// algorithm can be reduced") releases each update as its own unit: a
// panel's factor and updates still run back-to-back on their assigned
// worker (preserving the LDL^T prescale-buffer locality that makes native
// LDL^T faster than the generic runtimes), but successors are released as
// soon as *their* update lands, not when the whole 1D task ends, and idle
// workers can steal individual units.
//
// CPU-only by design: the paper uses native PASTIX as the CPU reference
// and never drives GPUs with it.
#pragma once

#include <deque>
#include <mutex>

#include "runtime/scheduler.hpp"

namespace spx {

struct NativeOptions {
  /// Static mapping strategy of the analyze phase: cost-model list
  /// scheduling (earliest completion, the default) or PASTIX's classic
  /// proportional subtree mapping (better locality, see dist/mapping.hpp).
  enum class Mapping { ListSchedule, Proportional };
  Mapping mapping = Mapping::ListSchedule;
};

class NativeScheduler : public Scheduler {
 public:
  NativeScheduler(const TaskTable& table, const Machine& machine,
                  const TaskCosts& costs, NativeOptions options = {});

  void reset() override;
  bool try_pop(int resource, Task* out) override;
  void on_complete(const Task& task, int resource) override;
  bool finished() const override;
  std::string name() const override { return "native"; }

  /// Estimated makespan of the static schedule (analyze-phase estimate,
  /// at 1D-task granularity).
  double static_makespan() const { return static_makespan_; }
  /// Units executed by a worker other than the statically assigned one.
  index_t steal_count() const { return steals_; }

 private:
  void compute_static_schedule();
  /// Finds a dispatchable unit in worker w's static queue; returns false
  /// when none.  Caller holds the lock.
  bool pop_from(int w, Task* out);

  const TaskTable* table_;
  const Machine* machine_;
  const TaskCosts* costs_;
  NativeOptions options_;

  /// Static assignment: per-worker ordered panel list.
  std::vector<std::vector<index_t>> static_queue_;
  double static_makespan_ = 0.0;

  mutable std::mutex mutex_;
  std::vector<std::size_t> head_;           ///< consumed prefix per worker
  std::vector<index_t> remaining_in_;       ///< pending updates into panel
  std::vector<char> factor_taken_;
  std::vector<char> factor_done_;
  /// Update edges of each panel not yet dispatched.
  std::vector<std::vector<index_t>> pending_edges_;
  /// Commute exclusion on update targets.
  std::vector<char> target_busy_;
  index_t completed_ = 0;
  index_t steals_ = 0;
};

}  // namespace spx
