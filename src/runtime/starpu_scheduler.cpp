#include "runtime/starpu_scheduler.hpp"

#include "obs/obs.hpp"

#include <algorithm>
#include <utility>

namespace spx {
namespace {

/// Pops the highest-priority entry of a vector organized as a max-heap by
/// priority value.
index_t heap_pop(std::vector<index_t>& heap,
                 const std::vector<double>& prio) {
  auto cmp = [&](index_t a, index_t b) { return prio[a] < prio[b]; };
  std::pop_heap(heap.begin(), heap.end(), cmp);
  const index_t id = heap.back();
  heap.pop_back();
  return id;
}

void heap_push(std::vector<index_t>& heap, const std::vector<double>& prio,
               index_t id) {
  auto cmp = [&](index_t a, index_t b) { return prio[a] < prio[b]; };
  heap.push_back(id);
  std::push_heap(heap.begin(), heap.end(), cmp);
}

}  // namespace

StarpuScheduler::StarpuScheduler(const TaskTable& table,
                                 const Machine& machine,
                                 const TaskCosts& costs,
                                 StarpuOptions options,
                                 const DataDirectory* directory)
    : table_(&table),
      machine_(&machine),
      costs_(&costs),
      options_(options),
      directory_(directory),
      deps_(table.structure().num_panels(), table.num_tasks()) {
  // --- Submission loop (the StarPU programming model): for each panel,
  // submit its factorization (RW on the panel) followed by its updates
  // (R source, commutative-RW target).  Dependencies are *inferred*.
  const SymbolicStructure& st = table.structure();
  for (index_t p = 0; p < st.num_panels(); ++p) {
    const Access factor_acc[] = {{p, AccessMode::ReadWrite}};
    deps_.submit(table.id_of({TaskKind::Panel, p, -1}), factor_acc);
    for (index_t e = 0; e < static_cast<index_t>(st.targets[p].size());
         ++e) {
      const Access upd_acc[] = {{p, AccessMode::Read},
                                {st.targets[p][e].dst,
                                 AccessMode::CommuteRW}};
      deps_.submit(table.id_of({TaskKind::Update, p, e}), upd_acc);
    }
  }
  priority_ = table.bottom_levels(costs);
  remaining_.configure(static_cast<std::size_t>(table.num_tasks()));
  dmda_ = std::make_unique<ResourceQueue[]>(
      static_cast<std::size_t>(machine.num_resources()));
  commute_.configure(table.num_panels());
  counters_.configure(machine.num_resources());
  reset();
}

void StarpuScheduler::reset() {
  // Reset runs while the scheduler is quiescent (no workers attached).
  SPX_OBS(obs::MetricsRegistry::global()
              .counter("spx_scheduler_resets_total",
                       "Scheduler reset()s (one per driver run)",
                       {{"scheduler", "starpu"}})
              .inc());
  remaining_.assign(deps_.in_count());
  eager_any_.clear();
  eager_gpu_.clear();
  for (int r = 0; r < machine_->num_resources(); ++r) {
    dmda_[r].q.clear();
  }
  est_avail_.assign(machine_->num_resources(), 0.0);
  prefetch_done_.assign(static_cast<std::size_t>(table_->num_tasks()), 0);
  commute_.clear();
  assigned_.assign(static_cast<std::size_t>(table_->num_tasks()), -1);
  completed_.store(0, std::memory_order_relaxed);
  counters_.clear();
  double ignored_wait = 0.0;
  const std::vector<index_t>& in = deps_.in_count();
  for (index_t id = 0; id < table_->num_tasks(); ++id) {
    if (in[id] == 0) enqueue_ready(id, ignored_wait);
  }
}

bool StarpuScheduler::gpu_eligible(index_t id) const {
  if (machine_->num_gpus() == 0) return false;
  const Task t = table_->task_of(id);
  // Panel factorizations stay on CPUs (paper §V-B: "we decide not to
  // offload the tasks that factorize and update the panel").
  if (t.kind != TaskKind::Update) return false;
  return table_->flops(t) >= options_.gpu_min_flops;
}

void StarpuScheduler::enqueue_ready(index_t id, double& lock_wait) {
  if (options_.policy == StarpuOptions::Policy::Eager) {
    TimedLock lock(central_mutex_, lock_wait);
    heap_push(gpu_eligible(id) ? eager_gpu_ : eager_any_, priority_, id);
    return;
  }
  // dmda: minimum estimated completion time across eligible resources.
  const Task t = table_->task_of(id);
  int best = -1;
  {
    TimedLock lock(placement_mutex_, lock_wait);
    double best_finish = 0.0;
    for (int r = 0; r < machine_->num_resources(); ++r) {
      const Resource& res = machine_->resource(r);
      double exec, transfer = 0.0;
      if (res.kind == ResourceKind::Cpu) {
        exec = t.kind == TaskKind::Panel
                   ? costs_->panel_seconds(t.panel, ResourceKind::Cpu)
                   : costs_->update_seconds(t.panel, t.edge,
                                            ResourceKind::Cpu);
        if (directory_ != nullptr && t.kind == TaskKind::Update) {
          const index_t dst =
              table_->structure().targets[t.panel][t.edge].dst;
          transfer = costs_->transfer_seconds(
              directory_->bytes_to_fetch(t.panel, DataDirectory::kHost) +
              directory_->bytes_to_fetch(dst, DataDirectory::kHost));
        }
      } else {
        if (!gpu_eligible(id)) continue;
        exec = costs_->update_seconds(t.panel, t.edge,
                                      ResourceKind::GpuStream);
        if (directory_ != nullptr) {
          const index_t dst =
              table_->structure().targets[t.panel][t.edge].dst;
          transfer = costs_->transfer_seconds(
              directory_->bytes_to_fetch(t.panel, res.gpu) +
              directory_->bytes_to_fetch(dst, res.gpu));
        }
      }
      const double finish = est_avail_[r] + transfer + exec;
      if (best < 0 || finish < best_finish) {
        best = r;
        best_finish = finish;
      }
    }
    SPX_ASSERT(best >= 0);
    est_avail_[best] = best_finish;
    assigned_[id] = best;
  }
  TimedLock lock(dmda_[best].m, lock_wait);
  dmda_[best].q.push_back(id);
}

bool StarpuScheduler::runnable_now(index_t id, int resource,
                                   double& lock_wait) {
  const Task t = table_->task_of(id);
  if (t.kind != TaskKind::Update) return true;
  const index_t dst = table_->structure().targets[t.panel][t.edge].dst;
  return commute_.acquire(dst, t, resource, lock_wait);
}

bool StarpuScheduler::try_pop(int resource, Task* out) {
  WorkerCounters& c = counters_.at(resource);
  const Resource& res = machine_->resource(resource);
  bool sampled = false;
  if (options_.policy == StarpuOptions::Policy::Eager) {
    // CPU workers draw from both queues (by priority); GPU streams only
    // from the GPU-eligible queue.  The heap pop happens under the
    // central lock; commute acquisition after it is dropped.
    while (true) {
      index_t id;
      {
        TimedLock lock(central_mutex_, c.lock_wait);
        if (!sampled) {
          c.depth_sum +=
              static_cast<double>(eager_any_.size() + eager_gpu_.size());
          ++c.depth_samples;
          sampled = true;
        }
        std::vector<index_t>* q;
        if (res.kind == ResourceKind::Cpu) {
          if (!eager_any_.empty() && !eager_gpu_.empty()) {
            q = priority_[eager_any_.front()] >=
                        priority_[eager_gpu_.front()]
                    ? &eager_any_
                    : &eager_gpu_;
          } else if (!eager_any_.empty()) {
            q = &eager_any_;
          } else if (!eager_gpu_.empty()) {
            q = &eager_gpu_;
          } else {
            return false;
          }
        } else {
          if (eager_gpu_.empty()) return false;
          q = &eager_gpu_;
        }
        id = heap_pop(*q, priority_);
      }
      if (runnable_now(id, resource, c.lock_wait)) {
        *out = table_->task_of(id);
        ++c.pops;
        return true;
      }
    }
  }
  ResourceQueue& rq = dmda_[resource];
  while (true) {
    index_t id;
    {
      TimedLock lock(rq.m, c.lock_wait);
      if (!sampled) {
        c.depth_sum += static_cast<double>(rq.q.size());
        ++c.depth_samples;
        sampled = true;
      }
      if (rq.q.empty()) return false;
      id = rq.q.front();
      rq.q.pop_front();
    }
    if (runnable_now(id, resource, c.lock_wait)) {
      *out = table_->task_of(id);
      ++c.pops;
      return true;
    }
  }
}

bool StarpuScheduler::peek_prefetch(int resource, Task* out) {
  if (options_.policy != StarpuOptions::Policy::Dmda) return false;
  WorkerCounters& c = counters_.at(resource);
  ResourceQueue& rq = dmda_[resource];
  TimedLock lock(rq.m, c.lock_wait);
  for (const index_t id : rq.q) {
    if (!prefetch_done_[id]) {
      prefetch_done_[id] = 1;
      *out = table_->task_of(id);
      return true;
    }
  }
  return false;
}

void StarpuScheduler::on_complete(const Task& task, int resource) {
  WorkerCounters& c = counters_.at(resource);
  const index_t id = table_->id_of(task);
  if (task.kind == TaskKind::Update) {
    const index_t dst =
        table_->structure().targets[task.panel][task.edge].dst;
    std::vector<std::pair<Task, int>> parked =
        commute_.release(dst, c.lock_wait);
    if (!parked.empty()) {
      if (options_.policy == StarpuOptions::Policy::Eager) {
        TimedLock lock(central_mutex_, c.lock_wait);
        for (const auto& [t, r] : parked) {
          const index_t w = table_->id_of(t);
          heap_push(gpu_eligible(w) ? eager_gpu_ : eager_any_, priority_,
                    w);
        }
      } else {
        // Re-insert deferred tasks at the front of their assigned queues
        // (they were dmda-placed first and must not fall behind newer
        // work), grouped per resource and in descending priority so the
        // dmda completion-time order is preserved -- a plain push_front
        // loop would reverse it.
        std::sort(parked.begin(), parked.end(),
                  [&](const std::pair<Task, int>& a,
                      const std::pair<Task, int>& b) {
                    const index_t ia = table_->id_of(a.first);
                    const index_t ib = table_->id_of(b.first);
                    if (assigned_[ia] != assigned_[ib]) {
                      return assigned_[ia] < assigned_[ib];
                    }
                    if (priority_[ia] != priority_[ib]) {
                      return priority_[ia] > priority_[ib];
                    }
                    return ia < ib;
                  });
        std::size_t i = 0;
        while (i < parked.size()) {
          const int r = assigned_[table_->id_of(parked[i].first)];
          std::vector<index_t> ids;
          while (i < parked.size() &&
                 assigned_[table_->id_of(parked[i].first)] == r) {
            ids.push_back(table_->id_of(parked[i].first));
            ++i;
          }
          TimedLock lock(dmda_[r].m, c.lock_wait);
          dmda_[r].q.insert(dmda_[r].q.begin(), ids.begin(), ids.end());
        }
      }
    }
  }
  for (const index_t succ : deps_.successors()[id]) {
    if (remaining_.release_one(static_cast<std::size_t>(succ))) {
      enqueue_ready(succ, c.lock_wait);
    }
  }
  completed_.fetch_add(1, std::memory_order_acq_rel);
}

bool StarpuScheduler::finished() const {
  return completed_.load(std::memory_order_acquire) == table_->num_tasks();
}

}  // namespace spx
