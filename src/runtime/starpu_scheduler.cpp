#include "runtime/starpu_scheduler.hpp"

#include <algorithm>

namespace spx {
namespace {

/// Pops the highest-priority entry of a vector organized as a max-heap by
/// priority value.
index_t heap_pop(std::vector<index_t>& heap,
                 const std::vector<double>& prio) {
  auto cmp = [&](index_t a, index_t b) { return prio[a] < prio[b]; };
  std::pop_heap(heap.begin(), heap.end(), cmp);
  const index_t id = heap.back();
  heap.pop_back();
  return id;
}

void heap_push(std::vector<index_t>& heap, const std::vector<double>& prio,
               index_t id) {
  auto cmp = [&](index_t a, index_t b) { return prio[a] < prio[b]; };
  heap.push_back(id);
  std::push_heap(heap.begin(), heap.end(), cmp);
}

}  // namespace

StarpuScheduler::StarpuScheduler(const TaskTable& table,
                                 const Machine& machine,
                                 const TaskCosts& costs,
                                 StarpuOptions options,
                                 const DataDirectory* directory)
    : table_(&table),
      machine_(&machine),
      costs_(&costs),
      options_(options),
      directory_(directory),
      deps_(table.structure().num_panels(), table.num_tasks()) {
  // --- Submission loop (the StarPU programming model): for each panel,
  // submit its factorization (RW on the panel) followed by its updates
  // (R source, commutative-RW target).  Dependencies are *inferred*.
  const SymbolicStructure& st = table.structure();
  for (index_t p = 0; p < st.num_panels(); ++p) {
    const Access factor_acc[] = {{p, AccessMode::ReadWrite}};
    deps_.submit(table.id_of({TaskKind::Panel, p, -1}), factor_acc);
    for (index_t e = 0; e < static_cast<index_t>(st.targets[p].size());
         ++e) {
      const Access upd_acc[] = {{p, AccessMode::Read},
                                {st.targets[p][e].dst,
                                 AccessMode::CommuteRW}};
      deps_.submit(table.id_of({TaskKind::Update, p, e}), upd_acc);
    }
  }
  priority_ = table.bottom_levels(costs);
  reset();
}

void StarpuScheduler::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  remaining_ = deps_.in_count();
  eager_any_.clear();
  eager_gpu_.clear();
  dmda_queue_.assign(machine_->num_resources(), {});
  est_avail_.assign(machine_->num_resources(), 0.0);
  prefetch_done_.assign(static_cast<std::size_t>(table_->num_tasks()), 0);
  target_busy_.assign(static_cast<std::size_t>(table_->num_panels()), 0);
  waiting_.assign(static_cast<std::size_t>(table_->num_panels()), {});
  assigned_.assign(static_cast<std::size_t>(table_->num_tasks()), -1);
  completed_ = 0;
  for (index_t id = 0; id < table_->num_tasks(); ++id) {
    if (remaining_[id] == 0) enqueue_ready(id);
  }
}

bool StarpuScheduler::gpu_eligible(index_t id) const {
  if (machine_->num_gpus() == 0) return false;
  const Task t = table_->task_of(id);
  // Panel factorizations stay on CPUs (paper §V-B: "we decide not to
  // offload the tasks that factorize and update the panel").
  if (t.kind != TaskKind::Update) return false;
  return table_->flops(t) >= options_.gpu_min_flops;
}

void StarpuScheduler::enqueue_ready(index_t id) {
  // Caller holds the lock.
  if (options_.policy == StarpuOptions::Policy::Eager) {
    heap_push(gpu_eligible(id) ? eager_gpu_ : eager_any_, priority_, id);
    return;
  }
  // dmda: minimum estimated completion time across eligible resources.
  const Task t = table_->task_of(id);
  int best = -1;
  double best_finish = 0.0;
  for (int r = 0; r < machine_->num_resources(); ++r) {
    const Resource& res = machine_->resource(r);
    double exec, transfer = 0.0;
    if (res.kind == ResourceKind::Cpu) {
      exec = t.kind == TaskKind::Panel
                 ? costs_->panel_seconds(t.panel, ResourceKind::Cpu)
                 : costs_->update_seconds(t.panel, t.edge,
                                          ResourceKind::Cpu);
      if (directory_ != nullptr && t.kind == TaskKind::Update) {
        const index_t dst = table_->structure().targets[t.panel][t.edge].dst;
        transfer = costs_->transfer_seconds(
            directory_->bytes_to_fetch(t.panel, DataDirectory::kHost) +
            directory_->bytes_to_fetch(dst, DataDirectory::kHost));
      }
    } else {
      if (!gpu_eligible(id)) continue;
      exec = costs_->update_seconds(t.panel, t.edge,
                                    ResourceKind::GpuStream);
      if (directory_ != nullptr) {
        const index_t dst = table_->structure().targets[t.panel][t.edge].dst;
        transfer = costs_->transfer_seconds(
            directory_->bytes_to_fetch(t.panel, res.gpu) +
            directory_->bytes_to_fetch(dst, res.gpu));
      }
    }
    const double finish = est_avail_[r] + transfer + exec;
    if (best < 0 || finish < best_finish) {
      best = r;
      best_finish = finish;
    }
  }
  SPX_ASSERT(best >= 0);
  est_avail_[best] = best_finish;
  assigned_[id] = best;
  dmda_queue_[best].push_back(id);
}

bool StarpuScheduler::runnable_now(index_t id) {
  const Task t = table_->task_of(id);
  if (t.kind != TaskKind::Update) return true;
  const index_t dst = table_->structure().targets[t.panel][t.edge].dst;
  if (target_busy_[dst]) {
    waiting_[dst].push_back(id);
    return false;
  }
  target_busy_[dst] = 1;
  return true;
}

bool StarpuScheduler::try_pop(int resource, Task* out) {
  std::lock_guard<std::mutex> lock(mutex_);
  const Resource& res = machine_->resource(resource);
  if (options_.policy == StarpuOptions::Policy::Eager) {
    // CPU workers draw from both queues (by priority); GPU streams only
    // from the GPU-eligible queue.
    while (true) {
      std::vector<index_t>* q;
      if (res.kind == ResourceKind::Cpu) {
        if (!eager_any_.empty() && !eager_gpu_.empty()) {
          q = priority_[eager_any_.front()] >= priority_[eager_gpu_.front()]
                  ? &eager_any_
                  : &eager_gpu_;
        } else if (!eager_any_.empty()) {
          q = &eager_any_;
        } else if (!eager_gpu_.empty()) {
          q = &eager_gpu_;
        } else {
          return false;
        }
      } else {
        if (eager_gpu_.empty()) return false;
        q = &eager_gpu_;
      }
      const index_t id = heap_pop(*q, priority_);
      if (runnable_now(id)) {
        *out = table_->task_of(id);
        return true;
      }
    }
  }
  auto& q = dmda_queue_[resource];
  while (!q.empty()) {
    const index_t id = q.front();
    q.pop_front();
    if (runnable_now(id)) {
      *out = table_->task_of(id);
      return true;
    }
  }
  return false;
}

bool StarpuScheduler::peek_prefetch(int resource, Task* out) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (options_.policy != StarpuOptions::Policy::Dmda) return false;
  for (const index_t id : dmda_queue_[resource]) {
    if (!prefetch_done_[id]) {
      prefetch_done_[id] = 1;
      *out = table_->task_of(id);
      return true;
    }
  }
  return false;
}

void StarpuScheduler::on_complete(const Task& task, int /*resource*/) {
  std::lock_guard<std::mutex> lock(mutex_);
  const index_t id = table_->id_of(task);
  if (task.kind == TaskKind::Update) {
    const index_t dst = table_->structure().targets[task.panel][task.edge].dst;
    target_busy_[dst] = 0;
    if (!waiting_[dst].empty()) {
      // Re-enqueue deferred commute tasks; the next pop re-checks the
      // busy flag.
      for (const index_t w : waiting_[dst]) {
        if (options_.policy == StarpuOptions::Policy::Eager) {
          heap_push(gpu_eligible(w) ? eager_gpu_ : eager_any_, priority_, w);
        } else {
          dmda_queue_[assigned_[w]].push_front(w);
        }
      }
      waiting_[dst].clear();
    }
  }
  for (const index_t succ : deps_.successors()[id]) {
    if (--remaining_[succ] == 0) enqueue_ready(succ);
  }
  ++completed_;
}

bool StarpuScheduler::finished() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return completed_ == table_->num_tasks();
}

}  // namespace spx
