// Deterministic fault injection for the threaded runtime.
//
// A FaultInjector arms exactly one fault per run: the Nth task to *start*
// executing (a seedable, scheduler-independent ordinal) throws, stalls,
// or corrupts its target panel's pivot; alternatively the factor
// allocation itself fails.  Everything is driven by atomic counters, so
// a plan replays identically for a given (seed, task-count) pair no
// matter how the scheduler interleaves workers -- which is what lets the
// FaultStress harness sweep seeds and assert the runtime never deadlocks,
// never leaks a worker, and always surfaces exactly one error.
#pragma once

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>

#include "core/factor_data.hpp"

namespace spx {

/// What the armed fault does when its victim task starts.  The Wire*
/// actions target the Nth outbound protocol frame instead (their own
/// ordinal stream, consumed by net::Connection / net::BlockingClient).
enum class FaultAction {
  None,           ///< disarmed
  Throw,          ///< task throws InjectedFault
  Stall,          ///< task sleeps stall_seconds, then runs normally
  CorruptPivot,   ///< task zeroes its target panel's leading pivot
  AllocFail,      ///< FactorData allocation throws std::bad_alloc
  StallTransfer,  ///< Nth staging transfer sleeps stall_seconds first
  DropFrame,      ///< Nth outbound frame silently vanishes
  TruncateFrame,  ///< Nth frame sends a prefix, then the socket closes
  DelayFrame,     ///< Nth frame is held stall_seconds before sending
  CorruptFrame,   ///< Nth frame has one payload byte flipped
  AbortConnection,  ///< connection closes instead of sending the Nth frame
};

/// True for the actions that fire on the wire-frame ordinal stream.
bool is_wire_fault(FaultAction a);

const char* to_string(FaultAction a);

/// Exception thrown by a Throw-fault victim: distinguishable from real
/// numerical/runtime errors all the way up to the service ErrorCode.
class InjectedFault : public std::runtime_error {
 public:
  explicit InjectedFault(const std::string& what)
      : std::runtime_error(what) {}
};

/// One armed fault: `victim` is the 0-based ordinal among task *starts*.
struct FaultPlan {
  FaultAction action = FaultAction::None;
  std::uint64_t victim = 0;
  double stall_seconds = 0.0;

  /// Hit exactly the nth task to start executing.
  static FaultPlan nth_task(FaultAction a, std::uint64_t n,
                            double stall = 0.002);

  /// Derive the victim pseudo-randomly (splitmix64) from `seed` over a
  /// run of `ntasks` tasks -- the FaultStress seed-sweep entry point.
  static FaultPlan seeded(FaultAction a, std::uint64_t seed,
                          std::uint64_t ntasks, double stall = 0.002);
};

/// Shared, thread-safe fault state for one or more runs.  Implements
/// AllocationHook so the same object can kill the FactorData allocation
/// (FaultAction::AllocFail) or a task (all other actions).
class FaultInjector : public AllocationHook {
 public:
  FaultInjector() = default;
  explicit FaultInjector(const FaultPlan& plan) : plan_(plan) {}

  /// Called by the driver as each task starts.  May throw InjectedFault
  /// (Throw) or sleep (Stall); returns true when the caller must corrupt
  /// its target pivot (CorruptPivot).
  bool on_task_start();

  /// AllocationHook: fails the factor allocation once under AllocFail.
  bool fail_alloc(std::size_t bytes) override;

  /// Called by device engines as each staging transfer starts (its own
  /// ordinal stream, independent of task starts).  Under StallTransfer
  /// the victim transfer sleeps stall_seconds before moving bytes --
  /// delaying, never corrupting, so overlap/eviction paths can be
  /// stress-ordered deterministically.
  void on_transfer_start();

  /// Called by network endpoints as each outbound frame is about to be
  /// written (its own ordinal stream).  Returns the armed wire action
  /// when this frame is the victim, FaultAction::None otherwise; the
  /// caller applies the drop/truncate/delay/corrupt/abort semantics
  /// (the injector only decides and counts, so it stays I/O-free).
  FaultAction on_wire_frame();

  /// Transfers started since the last rearm.
  std::uint64_t transfers_started() const {
    return transfers_started_.load(std::memory_order_relaxed);
  }

  /// Outbound frames offered to on_wire_frame since the last rearm.
  std::uint64_t wire_frames() const {
    return wire_frames_.load(std::memory_order_relaxed);
  }

  /// Tasks started since the last reset (== the next victim ordinal).
  std::uint64_t started() const {
    return started_.load(std::memory_order_relaxed);
  }
  /// Times the armed fault actually triggered.
  int fired_count() const { return fired_.load(std::memory_order_relaxed); }

  const FaultPlan& plan() const { return plan_; }

  /// Re-arms for another run: ordinals restart at 0 (fired_count keeps
  /// accumulating so retry loops can see the total).
  void rearm(const FaultPlan& plan) {
    plan_ = plan;
    started_.store(0, std::memory_order_relaxed);
    transfers_started_.store(0, std::memory_order_relaxed);
    wire_frames_.store(0, std::memory_order_relaxed);
  }
  void rearm() {
    started_.store(0, std::memory_order_relaxed);
    transfers_started_.store(0, std::memory_order_relaxed);
    wire_frames_.store(0, std::memory_order_relaxed);
  }

 private:
  FaultPlan plan_;
  std::atomic<std::uint64_t> started_{0};
  std::atomic<std::uint64_t> transfers_started_{0};
  std::atomic<std::uint64_t> wire_frames_{0};
  std::atomic<int> fired_{0};
};

}  // namespace spx
