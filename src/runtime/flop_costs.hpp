// Flop-proportional cost oracle for real (non-simulated) execution:
// schedulers only need *relative* task weights for priorities, static
// mapping, and HEFT placement; an assumed sustained rate is enough.
// For rates measured on the actual host, use perfmodel::CalibratedCosts
// (docs/PERF_MODELS.md); this oracle is its fallback for uncovered shapes.
#pragma once

#include "common/error.hpp"
#include "runtime/task.hpp"

namespace spx {

class FlopCosts : public TaskCosts {
 public:
  /// `cpu_gflops`: assumed sustained CPU rate; `gpu_speedup`: how much
  /// faster a GPU runs a large update (only ratios matter).
  explicit FlopCosts(const TaskTable& table, double cpu_gflops = 5.0,
                     double gpu_speedup = 8.0, double pcie_gbps = 6.0)
      : table_(&table),
        cpu_rate_(cpu_gflops * 1e9),
        gpu_rate_(cpu_gflops * gpu_speedup * 1e9),
        pcie_rate_(pcie_gbps * 1e9) {}

  /// Panels are CPU-only (paper §V-B); a GpuStream query is a caller bug
  /// and throws rather than silently answering with the CPU rate, which
  /// used to mask misrouted placement queries.
  double panel_seconds(index_t p, ResourceKind kind) const override {
    SPX_CHECK_ARG(kind == ResourceKind::Cpu,
                  "panel tasks are CPU-only (paper §V-B): no GPU panel rate");
    return table_->flops({TaskKind::Panel, p, -1}) / cpu_rate_;
  }
  double update_seconds(index_t p, index_t edge,
                        ResourceKind kind) const override {
    const double f = table_->flops({TaskKind::Update, p, edge});
    return f / (kind == ResourceKind::Cpu ? cpu_rate_ : gpu_rate_);
  }
  double transfer_seconds(double bytes) const override {
    return bytes / pcie_rate_;
  }

 private:
  const TaskTable* table_;
  double cpu_rate_;
  double gpu_rate_;
  double pcie_rate_;
};

}  // namespace spx
