// DAG statistics: total work, critical paths, and average parallelism of
// the three task decompositions the paper discusses in §III/§V:
//   * the fine two-level decomposition (panel task + per-couple updates)
//     used by the generic runtimes,
//   * coarse 1D right-looking tasks (factor + all *outgoing* updates),
//   * coarse 1D left-looking tasks (all *incoming* updates + factor).
// These numbers quantify why the paper splits tasks ("the critical path
// of the algorithm can be reduced") and what left- vs right-looking trade.
#pragma once

#include "runtime/task.hpp"

namespace spx {

struct DagStats {
  double total_work = 0.0;        ///< sum of task durations (seconds)
  double critical_path = 0.0;     ///< longest dependency chain (seconds)
  double avg_parallelism() const {
    return critical_path > 0 ? total_work / critical_path : 0.0;
  }
  index_t num_tasks = 0;
  /// Widest unit-depth wavefront of the DAG: an upper bound on how many
  /// tasks can ever be ready simultaneously, i.e. on scheduler queue
  /// depth (context for the contention counters in RunStats).
  index_t peak_width = 0;
};

enum class Decomposition { TwoLevel, OneDRight, OneDLeft };

DagStats dag_stats(const SymbolicStructure& st, const TaskCosts& costs,
                   Decomposition decomposition);

}  // namespace spx
