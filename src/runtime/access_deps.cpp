#include "runtime/access_deps.hpp"

#include <algorithm>

namespace spx {

ImplicitDeps::ImplicitDeps(index_t num_handles, index_t num_tasks)
    : handles_(static_cast<std::size_t>(num_handles)),
      in_count_(static_cast<std::size_t>(num_tasks), 0),
      successors_(static_cast<std::size_t>(num_tasks)) {}

void ImplicitDeps::add_edge(index_t from, index_t to) {
  SPX_DEBUG_ASSERT(from != to);
  auto& succ = successors_[from];
  if (std::find(succ.begin(), succ.end(), to) != succ.end()) return;
  succ.push_back(to);
  in_count_[to]++;
}

void ImplicitDeps::submit(index_t task, std::span<const Access> accesses) {
  for (const Access& a : accesses) {
    HandleState& h = handles_[a.handle];
    switch (a.mode) {
      case AccessMode::Read:
        for (const index_t w : h.writers) add_edge(w, task);
        h.readers.push_back(task);
        h.commute_open = false;  // a reader closes the commute group
        break;
      case AccessMode::Write:
      case AccessMode::ReadWrite:
        for (const index_t w : h.writers) add_edge(w, task);
        for (const index_t r : h.readers) add_edge(r, task);
        h.writers.assign(1, task);
        h.readers.clear();
        h.commute_open = false;
        break;
      case AccessMode::CommuteRW:
        if (h.commute_open) {
          // Join the open group: same predecessors as the other members,
          // no edges among members.
          for (const index_t d : h.group_deps) add_edge(d, task);
          h.writers.push_back(task);
        } else {
          // Start a new group after the current writers/readers.
          h.group_deps.clear();
          for (const index_t w : h.writers) h.group_deps.push_back(w);
          for (const index_t r : h.readers) h.group_deps.push_back(r);
          for (const index_t d : h.group_deps) add_edge(d, task);
          h.writers.assign(1, task);
          h.readers.clear();
          h.commute_open = true;
        }
        break;
    }
  }
}

}  // namespace spx
