// Implicit dependency inference from data-access modes.
//
// This is the StarPU submission model (paper §IV): the application submits
// tasks in plain sequential order, each declaring how it accesses which
// data handles, and the runtime infers the dependency graph that preserves
// sequential consistency per handle.  CommuteRW is StarPU's commutative
// write: members of a commute group do not depend on each other but must
// be mutually excluded on the handle at execution time.
#pragma once

#include <span>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"

namespace spx {

enum class AccessMode : std::uint8_t { Read, Write, ReadWrite, CommuteRW };

struct Access {
  index_t handle;
  AccessMode mode;
};

class ImplicitDeps {
 public:
  ImplicitDeps(index_t num_handles, index_t num_tasks);

  /// Submits the next task (ids must be submitted in increasing order is
  /// not required, but each id exactly once).
  void submit(index_t task, std::span<const Access> accesses);

  /// Number of predecessor tasks of each task.
  const std::vector<index_t>& in_count() const { return in_count_; }
  /// Successor lists (deduplicated).
  const std::vector<std::vector<index_t>>& successors() const {
    return successors_;
  }

 private:
  void add_edge(index_t from, index_t to);

  struct HandleState {
    /// Tasks forming the last write event (one writer, or an open commute
    /// group).
    std::vector<index_t> writers;
    /// Readers since that write event.
    std::vector<index_t> readers;
    /// Predecessors each new commute-group member must depend on.
    std::vector<index_t> group_deps;
    bool commute_open = false;
  };

  std::vector<HandleState> handles_;
  std::vector<index_t> in_count_;
  std::vector<std::vector<index_t>> successors_;
};

}  // namespace spx
