// Sharded runtime-layer primitives shared by the three schedulers and the
// real execution driver.
//
// The original runtime layer funneled every try_pop / on_complete through
// one global std::mutex per scheduler, which caps scaling by lock
// convoying well before 12 cores (the paper's §IV point: PaRSEC's *local*
// dependency release is what wins on many-small-task matrices).  This
// header provides the building blocks of the sharded design:
//
//   * TimedLock        -- mutex guard that charges blocked time to a
//                         per-worker accumulator (cheap when uncontended);
//   * CounterBank      -- cache-line-padded per-worker contention counters
//                         (lock-wait, steals, pops, queue-depth samples);
//   * AtomicCounters   -- dependency counters released with fetch_sub, so
//                         on_complete never takes a global lock;
//   * ShardedTaskDeque -- per-worker ready deques, each with its own lock
//                         (LIFO local pop, FIFO steal from the most loaded
//                         shard);
//   * CommuteStripes   -- striped commute-exclusion gate on update targets
//                         with deferred-task parking under the stripe lock.
//
// Counter slots are written only by the owning worker and read quiescently
// (after the driver joined its workers), so they need no atomics.
#pragma once

#include <algorithm>
#include <atomic>
#include <deque>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "common/timer.hpp"
#include "runtime/run_stats.hpp"
#include "runtime/task.hpp"

namespace spx {

/// Locks `m` for the current scope, adding any time spent blocked to
/// `wait_acc`.  The clock is only read when a try_lock fails, so the
/// uncontended fast path costs one atomic exchange.
class TimedLock {
 public:
  TimedLock(std::mutex& m, double& wait_acc) : m_(m) {
    if (!m_.try_lock()) {
      Timer blocked;
      m_.lock();
      wait_acc += blocked.elapsed();
    }
  }
  ~TimedLock() { m_.unlock(); }
  TimedLock(const TimedLock&) = delete;
  TimedLock& operator=(const TimedLock&) = delete;

 private:
  std::mutex& m_;
};

/// Per-worker contention counters, padded to a cache line so concurrent
/// workers never write the same line.
struct alignas(64) WorkerCounters {
  double lock_wait = 0.0;     ///< seconds blocked acquiring scheduler locks
  double depth_sum = 0.0;     ///< sum of sampled own-queue depths
  index_t steals = 0;         ///< tasks taken from another worker's shard
  index_t pops = 0;           ///< successful try_pop calls
  index_t depth_samples = 0;  ///< number of queue-depth samples
};

class CounterBank {
 public:
  void configure(int num_workers) {
    slots_.assign(static_cast<std::size_t>(std::max(1, num_workers)),
                  WorkerCounters{});
  }
  void clear() {
    for (WorkerCounters& s : slots_) s = WorkerCounters{};
  }
  WorkerCounters& at(int worker) {
    const int n = static_cast<int>(slots_.size());
    return slots_[static_cast<std::size_t>(worker >= 0 && worker < n
                                               ? worker
                                               : 0)];
  }
  ContentionStats snapshot() const {
    ContentionStats out;
    const std::size_t n = slots_.size();
    out.lock_wait.resize(n);
    out.steals.resize(n);
    out.pops.resize(n);
    out.depth_samples.resize(n);
    out.depth_sum.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      out.lock_wait[i] = slots_[i].lock_wait;
      out.steals[i] = slots_[i].steals;
      out.pops[i] = slots_[i].pops;
      out.depth_samples[i] = slots_[i].depth_samples;
      out.depth_sum[i] = slots_[i].depth_sum;
    }
    return out;
  }

 private:
  std::vector<WorkerCounters> slots_;
};

/// Fixed-capacity array of atomic dependency counters.  Capacity is set
/// once at construction; values are rewritten by reset() while the
/// scheduler is quiescent.
class AtomicCounters {
 public:
  void configure(std::size_t n) {
    n_ = n;
    v_ = std::make_unique<std::atomic<index_t>[]>(n);
  }
  void assign(const std::vector<index_t>& src) {
    for (std::size_t i = 0; i < n_; ++i) {
      v_[i].store(i < src.size() ? src[i] : 0, std::memory_order_relaxed);
    }
  }
  index_t load(std::size_t i) const {
    return v_[i].load(std::memory_order_acquire);
  }
  /// Releases one dependency of `i`; true when it was the last one (the
  /// fetch_sub is acq_rel, so the releaser's writes are visible to whoever
  /// observes the counter at zero).
  bool release_one(std::size_t i) {
    return v_[i].fetch_sub(1, std::memory_order_acq_rel) == 1;
  }

 private:
  std::unique_ptr<std::atomic<index_t>[]> v_;
  std::size_t n_ = 0;
};

/// Per-worker ready-task deques, one lock per shard: a worker pops LIFO
/// from its own shard (cache reuse) and steals FIFO from the most loaded
/// peer.  Approximate sizes are kept in atomics so victim selection never
/// locks a shard it will not pop from.
class ShardedTaskDeque {
 public:
  void configure(int num_shards) {
    count_ = std::max(1, num_shards);
    shards_ = std::make_unique<Shard[]>(static_cast<std::size_t>(count_));
  }
  int num_shards() const { return count_; }

  /// Reset-time clearing (quiescent).
  void clear() {
    for (int s = 0; s < count_; ++s) {
      std::lock_guard<std::mutex> lock(shards_[s].m);
      shards_[s].q.clear();
      shards_[s].size.store(0, std::memory_order_relaxed);
    }
  }

  void push(int shard, const Task& t, double& lock_wait) {
    Shard& s = shards_[clamp(shard)];
    TimedLock lock(s.m, lock_wait);
    s.q.push_back(t);
    s.size.store(s.q.size(), std::memory_order_release);
  }

  bool pop_lifo(int shard, Task* out, double& lock_wait) {
    Shard& s = shards_[clamp(shard)];
    TimedLock lock(s.m, lock_wait);
    if (s.q.empty()) {
      s.size.store(0, std::memory_order_release);
      return false;
    }
    *out = s.q.back();
    s.q.pop_back();
    s.size.store(s.q.size(), std::memory_order_release);
    return true;
  }

  bool pop_fifo(int shard, Task* out, double& lock_wait) {
    Shard& s = shards_[clamp(shard)];
    TimedLock lock(s.m, lock_wait);
    if (s.q.empty()) {
      s.size.store(0, std::memory_order_release);
      return false;
    }
    *out = s.q.front();
    s.q.pop_front();
    s.size.store(s.q.size(), std::memory_order_release);
    return true;
  }

  std::size_t approx_size(int shard) const {
    return shards_[clamp(shard)].size.load(std::memory_order_relaxed);
  }

  /// Most loaded shard other than `self` (ties break toward the lower
  /// index so steal order is deterministic); -1 when all appear empty.
  int most_loaded(int self) const {
    int best = -1;
    std::ptrdiff_t most = 0;
    for (int w = 0; w < count_; ++w) {
      if (w == self) continue;
      const auto sz = static_cast<std::ptrdiff_t>(approx_size(w));
      if (sz > most) {
        most = sz;
        best = w;
      }
    }
    return best;
  }

 private:
  struct alignas(64) Shard {
    std::mutex m;
    std::deque<Task> q;
    std::atomic<std::size_t> size{0};
  };

  int clamp(int s) const { return s >= 0 && s < count_ ? s : 0; }

  std::unique_ptr<Shard[]> shards_;
  int count_ = 0;
};

/// Striped commute-exclusion gate on update targets.  acquire() claims the
/// destination panel or parks the task under the stripe lock; release()
/// clears the claim and hands the parked tasks back to the caller for
/// re-enqueueing.  Because parking and draining happen under the same
/// stripe lock, a task parked concurrently with a release is always picked
/// up by either that release or the next one.
class CommuteStripes {
 public:
  void configure(index_t num_panels) {
    busy_.assign(static_cast<std::size_t>(num_panels), 0);
    waiting_.assign(static_cast<std::size_t>(num_panels), {});
  }
  /// Reset-time clearing (quiescent).
  void clear() {
    std::fill(busy_.begin(), busy_.end(), 0);
    for (auto& w : waiting_) w.clear();
  }

  /// True when `dst` was free and is now claimed by the caller; false when
  /// busy, in which case (task, resource) was parked for the matching
  /// release().
  bool acquire(index_t dst, const Task& t, int resource, double& lock_wait) {
    TimedLock lock(stripe(dst), lock_wait);
    if (busy_[static_cast<std::size_t>(dst)]) {
      waiting_[static_cast<std::size_t>(dst)].emplace_back(t, resource);
      return false;
    }
    busy_[static_cast<std::size_t>(dst)] = 1;
    return true;
  }

  /// Clears the claim on `dst` and returns the parked (task, resource)
  /// pairs, in arrival order.
  std::vector<std::pair<Task, int>> release(index_t dst, double& lock_wait) {
    TimedLock lock(stripe(dst), lock_wait);
    busy_[static_cast<std::size_t>(dst)] = 0;
    return std::exchange(waiting_[static_cast<std::size_t>(dst)], {});
  }

 private:
  static constexpr std::size_t kStripes = 64;
  struct alignas(64) Stripe {
    std::mutex m;
  };

  std::mutex& stripe(index_t p) {
    return stripes_[static_cast<std::size_t>(p) % kStripes].m;
  }

  Stripe stripes_[kStripes];
  std::vector<char> busy_;
  std::vector<std::vector<std::pair<Task, int>>> waiting_;
};

/// A steal candidate of the native scheduler's victim ordering.
struct StealVictim {
  index_t remaining;  ///< undispatched panels left in the victim's queue
  int worker;
};

/// Steal order: most remaining work first, ties broken toward the lower
/// worker index.  Signed comparison throughout -- the historical
/// comparator subtracted unsigned size()/head values, which wrapped and
/// made the order platform-dependent.
inline void sort_steal_victims(std::vector<StealVictim>& victims) {
  std::sort(victims.begin(), victims.end(),
            [](const StealVictim& a, const StealVictim& b) {
              if (a.remaining != b.remaining) {
                return a.remaining > b.remaining;
              }
              return a.worker < b.worker;
            });
}

}  // namespace spx
