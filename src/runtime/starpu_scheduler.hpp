// The StarPU-like runtime (paper §IV).
//
// Characteristics reproduced from StarPU:
//   * sequential task submission with *implicit dependency inference* from
//     per-handle access modes (the ImplicitDeps engine) -- the whole task
//     graph is materialized up front, trading memory for simplicity;
//   * centralized model-based scheduling: the default `dmda` policy places
//     each ready task on the resource minimizing its estimated completion
//     time, including PCIe transfer penalties read from the coherence
//     directory (HEFT-style); `eager` is the simple central-queue variant;
//   * commutative-write access for updates into the same panel (StarPU's
//     STARPU_COMMUTE): group members are unordered but mutually excluded
//     on the handle at execution time;
//   * dedicated GPU workers (the caller builds the Machine with one fewer
//     CPU per GPU) and transfer prefetch for queued GPU tasks;
//   * no data-reuse policy on CPUs -- the paper attributes StarPU's
//     multicore gap to exactly this, and the simulator's cache model sees
//     the effect because placement here ignores locality.
//
// Concurrency: dependency counters are atomics; each dmda per-resource
// queue has its own lock; placement (est_avail_) and the eager heaps keep
// small dedicated mutexes -- dmda placement stays centralized by design
// (that *is* the StarPU model the paper measures), but completion no
// longer serializes against every other worker's pop.
#pragma once

#include <atomic>
#include <deque>
#include <memory>
#include <mutex>

#include "runtime/access_deps.hpp"
#include "runtime/data_directory.hpp"
#include "runtime/scheduler.hpp"
#include "runtime/worker_queues.hpp"

namespace spx {

struct StarpuOptions {
  enum class Policy { Eager, Dmda };
  Policy policy = Policy::Dmda;
  /// Updates below this many flops never get a GPU implementation
  /// (threshold criterion on task size, paper §II).
  double gpu_min_flops = 2e6;
};

class StarpuScheduler : public Scheduler {
 public:
  StarpuScheduler(const TaskTable& table, const Machine& machine,
                  const TaskCosts& costs, StarpuOptions options = {},
                  const DataDirectory* directory = nullptr);

  void reset() override;
  bool try_pop(int resource, Task* out) override;
  void on_complete(const Task& task, int resource) override;
  bool finished() const override;
  std::string name() const override {
    return options_.policy == StarpuOptions::Policy::Dmda ? "starpu-dmda"
                                                          : "starpu-eager";
  }

  /// Next queued-but-not-started task on `resource`, for transfer
  /// prefetching by the driver.  Each task is returned at most once.
  bool peek_prefetch(int resource, Task* out) override;

  const ImplicitDeps& deps() const { return deps_; }
  ContentionStats contention() const override { return counters_.snapshot(); }

  /// Dmda placement decision per task id (-1 = not yet placed); read
  /// when quiescent.  The scheduler-parity tests compare this against
  /// the simulator's placement under identical calibrated costs.
  const std::vector<int>& dmda_assignment() const { return assigned_; }

 private:
  /// A dmda per-resource FIFO; also guards prefetch_done_ of the ids it
  /// holds (an id lives in exactly one queue).
  struct alignas(64) ResourceQueue {
    std::mutex m;
    std::deque<index_t> q;
  };

  bool gpu_eligible(index_t id) const;
  void enqueue_ready(index_t id, double& lock_wait);
  /// Commute gating: claims the update's target or parks the task.
  bool runnable_now(index_t id, int resource, double& lock_wait);

  const TaskTable* table_;
  const Machine* machine_;
  const TaskCosts* costs_;
  StarpuOptions options_;
  const DataDirectory* directory_;

  ImplicitDeps deps_;
  std::vector<double> priority_;

  AtomicCounters remaining_;
  // Eager: two central queues (max-priority first) under one mutex.
  std::mutex central_mutex_;
  std::vector<index_t> eager_any_;
  std::vector<index_t> eager_gpu_;
  // Dmda: per-resource FIFO queues; placement estimates under their own
  // mutex (HEFT placement is centralized by design).
  std::unique_ptr<ResourceQueue[]> dmda_;
  std::mutex placement_mutex_;
  std::vector<double> est_avail_;
  std::vector<char> prefetch_done_;
  // Commute exclusion on update targets.
  CommuteStripes commute_;
  std::vector<int> assigned_;  // dmda resource of each task, set once
  std::atomic<index_t> completed_{0};
  CounterBank counters_;
};

}  // namespace spx
