// Simulated platform descriptions.
//
// The paper's testbed is a Mirage node of the PLAFRIM cluster: two
// hexa-core Westmere Xeon X5650 (2.67 GHz) and three NVIDIA Tesla M2070
// GPUs on PCIe 2.0 x16.  This host has neither twelve cores nor any GPU,
// so the scaling studies run the *real* schedulers against this spec in a
// discrete-event simulation (see DESIGN.md, substitution table): the same
// methodology StarPU itself uses for scheduler studies via SimGrid.
//
// Constants below derive from public hardware specs and the paper's own
// Figure 3 measurements (e.g. the ~300 GFlop/s attainable DGEMM peak of
// the M2070 under CUDA 4.2).
#pragma once

namespace spx::sim {

struct PlatformSpec {
  // --- CPU side -------------------------------------------------------
  int max_cores = 12;
  /// Per-core DP peak: 4 flops/cycle * 2.67 GHz.
  double cpu_peak_gflops = 10.68;
  /// Fraction of peak attainable by a well-blocked large GEMM.
  double cpu_efficiency = 0.92;
  /// Dimension at which a GEMM reaches half its asymptotic efficiency.
  double cpu_half_dim = 8.0;
  /// Sustainable per-core memory bandwidth (bytes/s).
  double cpu_mem_bw = 4.0e9;
  /// Factor-kernel (POTRF/TRSM) efficiency relative to GEMM.
  double cpu_panel_efficiency = 0.55;
  /// Per-worker cache capacity used by the reuse model (bytes).
  double cpu_cache_bytes = 6.0e6;

  // --- GPU side (Fermi M2070) ------------------------------------------
  int max_gpus = 3;
  /// Attainable DGEMM peak on large square matrices (paper Fig. 3's
  /// "cuBLAS peak" line; the silicon peak is 515 GFlop/s).
  double gpu_peak_gflops = 302.0;
  /// Device memory bandwidth (bytes/s, ~80% of the 150 GB/s spec).
  double gpu_mem_bw = 120.0e9;
  /// Thread-block tile edge of the GEMM kernels.
  int gpu_tile = 64;
  /// Half-saturation constant of the occupancy curve: a kernel with B
  /// thread blocks reaches u = B / (B + gpu_block_half) of the attainable
  /// rate, and demands the same fraction of the device.  32 places the
  /// paper's Fig. 3 crossovers correctly (third stream helps below
  /// M ~ 1000; the single-stream curve still climbs at M = 9000).
  int gpu_block_half = 32;
  /// Kernel launch latency (s).
  double gpu_launch_latency = 8e-6;
  /// Usable device memory (bytes); the M2070 has 6 GB minus ECC overhead.
  /// Panels are evicted LRU when a transfer would overflow it.
  double gpu_memory_bytes = 5.25e9;
  /// Relative efficiency of the ASTRA auto-tuned kernel vs cuBLAS
  /// (paper: "looses 50 GFlop/s, around 15%").
  double astra_efficiency = 0.85;
  /// Extra loss from disabling textures for concurrent streams (~5%).
  double no_texture_efficiency = 0.95;
  /// Extra loss of the LDL^T fused GPU kernel (~5%).
  double ldlt_gpu_efficiency = 0.95;
  /// CPU efficiency of the generic runtimes' fused LDL^T update kernel
  /// relative to the plain GEMM the native prescaled path uses (the
  /// "less efficient kernel that performs the full LDL^T operation at
  /// each update", paper §V-A).
  double ldlt_fused_cpu_efficiency = 0.85;
  /// Coalescence penalty slope of the gapped sparse kernel: rate is
  /// divided by 1 + slope * (gap_ratio - 1).
  double gap_penalty_slope = 0.35;

  // --- interconnect -----------------------------------------------------
  /// PCIe 2.0 x16 effective bandwidth (bytes/s) and latency (s).
  double pcie_bw = 6.0e9;
  double pcie_latency = 15e-6;

  // --- runtime overheads -------------------------------------------------
  /// Per-task scheduling overhead (s); set per runtime by the runner
  /// (PaRSEC targets tasks "an order of magnitude under ten
  /// microseconds"; StarPU's centralized hub costs more).
  double task_overhead = 2e-6;
};

/// The paper's Mirage node.
PlatformSpec mirage();

/// A deliberately small platform for tests (2 cores, 1 GPU, fast).
PlatformSpec testbox();

}  // namespace spx::sim
