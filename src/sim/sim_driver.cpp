#include "sim/sim_driver.hpp"

#include <algorithm>
#include <deque>
#include <memory>
#include <limits>
#include <list>
#include <map>

#include "common/log.hpp"
#include "runtime/engine_model.hpp"
#include "sim/device_engine.hpp"

namespace spx::sim {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Per-worker LRU over panel handles, capacity in bytes: the cache-reuse
/// model that separates PaRSEC's locality scheduling from StarPU's
/// central queues on multicore runs (paper §V-A).
class CacheModel {
 public:
  explicit CacheModel(double capacity) : capacity_(capacity) {}

  bool hot(index_t panel) const { return pos_.count(panel) != 0; }

  void touch(index_t panel, double bytes) {
    const auto it = pos_.find(panel);
    if (it != pos_.end()) {
      held_ -= it->second->second;
      lru_.erase(it->second);
      pos_.erase(it);
    }
    lru_.emplace_front(panel, bytes);
    pos_[panel] = lru_.begin();
    held_ += bytes;
    while (held_ > capacity_ && !lru_.empty()) {
      const auto& [p, b] = lru_.back();
      held_ -= b;
      pos_.erase(p);
      lru_.pop_back();
    }
  }

 private:
  double capacity_;
  double held_ = 0.0;
  std::list<std::pair<index_t, double>> lru_;
  std::map<index_t, std::list<std::pair<index_t, double>>::iterator> pos_;
};

struct Staged {
  Task task;
  int resource = -1;
  int pending_transfers = 0;
};

/// Per-GPU resident-set tracker: the shared DeviceLru from the engine
/// model (runtime/engine_model.hpp), so the simulator and the real
/// driver's emulated engines evict under identical recency/pinning rules.
using DeviceMemory = DeviceLru;

struct Transfer {
  index_t panel = -1;
  int dest = DataDirectory::kHost;  ///< kHost or gpu index
  int engine = 0;                   ///< DMA engine carrying it
  double bytes = 0.0;
  bool d2h = false;
  /// For GPU->GPU routing: once landed on the host, forward here.
  int forward_to = -2;  // -2 = none
  std::vector<int> waiters;  ///< staged-task ids
};

class Simulation {
 public:
  Simulation(Scheduler& sched, const Machine& machine,
             const TaskTable& table, const CostModel& model,
             double total_flops, const SimOptions& options)
      : sched_(sched),
        machine_(machine),
        table_(table),
        model_(model),
        options_(options),
        owned_directory_(
            options.directory == nullptr
                ? std::make_unique<DataDirectory>(
                      table.structure(), table.factorization(),
                      model.options().complex_arith ? 16 : 8,
                      machine.num_gpus())
                : nullptr),
        directory_(options.directory != nullptr ? *options.directory
                                                : *owned_directory_),
        total_flops_(total_flops) {
    const int nr = machine.num_resources();
    state_.assign(nr, Idle);
    cpu_done_.assign(nr, kInf);
    task_start_.assign(nr, 0.0);
    current_.assign(nr, Staged{});
    for (int r = 0; r < nr; ++r) {
      caches_.emplace_back(model.spec().cpu_cache_bytes);
    }
    for (int g = 0; g < machine.num_gpus(); ++g) {
      engines_.emplace_back(machine.streams_per_gpu());
      dma_busy_until_.push_back(0.0);
      dma_active_.push_back(-1);
      dma_queue_.emplace_back();
      device_memory_.emplace_back(model.spec().gpu_memory_bytes);
    }
    stats_.busy.assign(nr, 0.0);
  }

  RunStats run() {
    // Directory first: sched_.reset() already places the initially-ready
    // tasks, and dmda placement reads residency for transfer estimates.
    directory_.reset();
    sched_.reset();
    std::int64_t events = 0;
    while (!sched_.finished()) {
      dispatch();
      if (sched_.finished()) break;
      const double t = next_event_time();
      if (t == kInf) {
        throw InternalError("simulation deadlock: no events, not finished");
      }
      now_ = t;
      process_events();
      if (options_.max_events > 0 && ++events > options_.max_events) {
        throw InternalError("simulation exceeded max_events");
      }
    }
    stats_.makespan = now_;
    stats_.gflops = now_ > 0 ? total_flops_ / now_ / 1e9 : 0.0;
    return stats_;
  }

 private:
  enum State { Idle, Staging, Computing };

  // ---- data movement ----------------------------------------------------

  /// Requests panel p valid at `dest`; returns false when no transfer was
  /// needed.  `waiter` (staged id) is notified on completion; -1 = none.
  bool request_transfer(index_t p, int dest, int waiter) {
    if (directory_.valid_on(p, dest)) return false;
    const auto key = std::make_pair(dest, p);
    const auto it = inflight_.find(key);
    if (it != inflight_.end()) {
      if (waiter >= 0) transfers_[it->second].waiters.push_back(waiter);
      return true;
    }
    const int src = directory_.source_of(p);
    Transfer tr;
    tr.panel = p;
    tr.bytes = directory_.panel_bytes(p);
    if (dest == DataDirectory::kHost) {
      SPX_ASSERT(src != DataDirectory::kHost);
      tr.dest = DataDirectory::kHost;
      tr.engine = src;
      tr.d2h = true;
    } else if (src == DataDirectory::kHost) {
      tr.dest = dest;
      tr.engine = dest;
      tr.d2h = false;
    } else {
      // GPU -> GPU: stage through the host (two hops; StarPU's direct
      // peer transfer is approximated by back-to-back hops).
      tr.dest = DataDirectory::kHost;
      tr.engine = src;
      tr.d2h = true;
      tr.forward_to = dest;
    }
    if (waiter >= 0) tr.waiters.push_back(waiter);
    const int id = static_cast<int>(transfers_.size());
    const int engine = tr.engine;
    const bool two_hop = tr.forward_to != -2;
    transfers_.push_back(std::move(tr));
    inflight_[key] = id;
    if (two_hop) {
      // The final hop is what unblocks the waiter; also dedupe on it.
      inflight_[std::make_pair(dest, p)] = id;
    }
    dma_queue_[engine].push_back(id);
    pump_dma(engine);
    return true;
  }

  void pump_dma(int g) {
    if (dma_active_[g] >= 0 || dma_queue_[g].empty()) return;
    const int id = dma_queue_[g].front();
    dma_queue_[g].pop_front();
    dma_active_[g] = id;
    dma_busy_until_[g] = std::max(now_, dma_busy_until_[g]) +
                         model_.transfer_seconds(transfers_[id].bytes);
  }

  void finish_transfer(int g) {
    const int id = dma_active_[g];
    dma_active_[g] = -1;
    Transfer& tr = transfers_[id];
    if (tr.dest != DataDirectory::kHost) {
      make_room(tr.dest, tr.bytes);
      device_memory_[tr.dest].insert(tr.panel, tr.bytes);
    }
    if (options_.trace != nullptr) {
      options_.trace->record_transfer(
          g, tr.panel,
          dma_busy_until_[g] - model_.transfer_seconds(tr.bytes),
          dma_busy_until_[g]);
    }
    directory_.add_copy(tr.panel, tr.dest);
    (tr.d2h ? stats_.bytes_d2h : stats_.bytes_h2d) += tr.bytes;
    inflight_.erase(std::make_pair(tr.dest, tr.panel));
    if (tr.forward_to != -2) {
      // Second hop: host -> destination GPU.
      const int dest = tr.forward_to;
      tr.forward_to = -2;
      tr.dest = dest;
      tr.engine = dest;
      tr.d2h = false;
      dma_queue_[dest].push_back(id);
      pump_dma(dest);
      pump_dma(g);
      return;
    }
    for (const int w : tr.waiters) {
      if (--staged_[w].pending_transfers == 0) start_compute(w);
    }
    tr.waiters.clear();
    pump_dma(g);
  }

  /// Evicts clean LRU panels from GPU `g` until `incoming` bytes fit.
  void make_room(int g, double incoming) {
    DeviceMemory& mem = device_memory_[g];
    while (mem.used() + incoming > mem.capacity()) {
      const index_t victim = mem.eviction_victim([&](index_t p) {
        // Only clean panels (valid somewhere else) can be dropped
        // without a write-back.
        if (!directory_.valid_on(p, g)) return true;  // stale entry
        for (int loc = DataDirectory::kHost; loc < machine_.num_gpus();
             ++loc) {
          if (loc != g && directory_.valid_on(p, loc)) return true;
        }
        return false;
      });
      if (victim < 0) break;  // everything pinned/dirty: over-subscribe
      if (directory_.valid_on(victim, g)) {
        directory_.drop_copy(victim, g);
      }
      mem.remove(victim);
      stats_.gpu_evictions++;
    }
  }

  // ---- task lifecycle -----------------------------------------------------

  /// Shared with the real driver's engine layer (task_handles in
  /// runtime/engine_model.hpp): both stage exactly this handle set.
  std::vector<index_t> handles_of(const Task& t) const {
    return task_handles(table_.structure(), sched_.subtree_groups(), t);
  }

  void begin_task(int r, const Task& t) {
    const int id = static_cast<int>(staged_.size());
    staged_.push_back({t, r, 0});
    state_[r] = Staging;
    current_[r] = staged_[id];
    const Resource& res = machine_.resource(r);
    const int loc =
        res.kind == ResourceKind::Cpu ? DataDirectory::kHost : res.gpu;
    int pending = 0;
    if (machine_.num_gpus() > 0) {
      for (const index_t h : handles_of(t)) {
        if (res.kind == ResourceKind::GpuStream) {
          device_memory_[res.gpu].pin(h);
          device_memory_[res.gpu].touch(h);
        }
        if (request_transfer(h, loc, id)) ++pending;
      }
    }
    staged_[id].pending_transfers = pending;
    if (pending == 0) start_compute(id);
  }

  void start_compute(int id) {
    const Staged& s = staged_[id];
    const int r = s.resource;
    const Resource& res = machine_.resource(r);
    state_[r] = Computing;
    current_[r] = s;
    const Task& t = s.task;
    if (res.kind == ResourceKind::Cpu) {
      double dur;
      CacheModel& cache = caches_[r];
      const SymbolicStructure& st = table_.structure();
      if (t.kind == TaskKind::Subtree) {
        // Merged subtree: every member's factor + updates back to back on
        // this worker; each member panel is hot right after its factor.
        dur = 0.0;
        for (const index_t m : sched_.subtree_groups()->members[t.panel]) {
          dur += model_.panel_seconds(m, ResourceKind::Cpu);
          cache.touch(m, model_.panel_bytes(m));
          for (index_t e = 0;
               e < static_cast<index_t>(st.targets[m].size()); ++e) {
            const index_t dst = st.targets[m][e].dst;
            const bool dst_hot = cache.hot(dst);
            stats_.cache_queries++;
            stats_.cache_hits += dst_hot ? 1 : 0;
            dur += model_.cpu_update_seconds(m, e, true, dst_hot);
            cache.touch(dst, model_.panel_bytes(dst));
          }
        }
      } else if (t.kind == TaskKind::Panel) {
        dur = model_.panel_seconds(t.panel, ResourceKind::Cpu);
        cache.touch(t.panel, model_.panel_bytes(t.panel));
      } else {
        const index_t dst = st.targets[t.panel][t.edge].dst;
        const bool src_hot = cache.hot(t.panel);
        const bool dst_hot = cache.hot(dst);
        stats_.cache_queries += 2;
        stats_.cache_hits += (src_hot ? 1 : 0) + (dst_hot ? 1 : 0);
        dur = model_.cpu_update_seconds(t.panel, t.edge, src_hot, dst_hot);
        cache.touch(t.panel, model_.panel_bytes(t.panel));
        cache.touch(dst, model_.panel_bytes(dst));
      }
      cpu_done_[r] = now_ + dur;
      task_start_[r] = now_;
      stats_.busy[r] += dur;
      stats_.tasks_cpu++;
    } else {
      SPX_ASSERT(t.kind == TaskKind::Update);
      const double dur = model_.gpu_update_seconds(t.panel, t.edge) +
                         model_.options().task_overhead;
      engines_[res.gpu].start(res.stream, now_, dur,
                              model_.gpu_update_demand(t.panel, t.edge));
      task_start_[r] = now_;
      stats_.tasks_gpu++;
    }
  }

  void complete_task(int r) {
    const Staged s = current_[r];
    if (options_.trace != nullptr) {
      options_.trace->record(r, s.task, task_start_[r], now_);
    }
    const Resource& res = machine_.resource(r);
    const int loc =
        res.kind == ResourceKind::Cpu ? DataDirectory::kHost : res.gpu;
    const Task& t = s.task;
    if (machine_.num_gpus() > 0) {
      // A write invalidates all other copies; mirror that in the per-GPU
      // resident-set accounting.
      const auto write_handle = [&](index_t h) {
        directory_.note_write(h, loc);
        for (int g = 0; g < machine_.num_gpus(); ++g) {
          if (g != loc) device_memory_[g].remove(h);
        }
      };
      if (t.kind == TaskKind::Update) {
        write_handle(table_.structure().targets[t.panel][t.edge].dst);
      } else if (t.kind == TaskKind::Subtree) {
        for (const index_t h : handles_of(t)) write_handle(h);
      } else {
        write_handle(t.panel);
      }
    }
    if (res.kind == ResourceKind::GpuStream) {
      for (const index_t h : handles_of(t)) {
        device_memory_[res.gpu].unpin(h);
      }
    }
    state_[r] = Idle;
    cpu_done_[r] = kInf;
    sched_.on_complete(t, r);
  }

  // ---- event loop ---------------------------------------------------------

  void dispatch() {
    bool progress = true;
    while (progress) {
      progress = false;
      for (int r = 0; r < machine_.num_resources(); ++r) {
        if (state_[r] != Idle) continue;
        Task t;
        if (sched_.try_pop(r, &t)) {
          begin_task(r, t);
          progress = true;
        }
      }
    }
    if (options_.prefetch && machine_.num_gpus() > 0) {
      for (int r = 0; r < machine_.num_resources(); ++r) {
        const Resource& res = machine_.resource(r);
        if (res.kind != ResourceKind::GpuStream) continue;
        // Prefetch a small look-ahead window, like StarPU does.
        Task t;
        for (int ahead = 0; ahead < 2 && sched_.peek_prefetch(r, &t);
             ++ahead) {
          for (const index_t h : handles_of(t)) {
            request_transfer(h, res.gpu, -1);
          }
        }
      }
    }
  }

  double next_event_time() const {
    double t = kInf;
    for (int r = 0; r < machine_.num_resources(); ++r) {
      t = std::min(t, cpu_done_[r]);
    }
    for (int g = 0; g < machine_.num_gpus(); ++g) {
      if (dma_active_[g] >= 0) t = std::min(t, dma_busy_until_[g]);
      t = std::min(t, engines_[g].next_completion().second);
    }
    return t;
  }

  void process_events() {
    // CPU completions.
    for (int r = 0; r < machine_.num_resources(); ++r) {
      if (cpu_done_[r] <= now_ + 1e-15) complete_task(r);
    }
    // Transfer completions.
    for (int g = 0; g < machine_.num_gpus(); ++g) {
      if (dma_active_[g] >= 0 && dma_busy_until_[g] <= now_ + 1e-15) {
        finish_transfer(g);
      }
    }
    // GPU kernel completions.
    for (int g = 0; g < machine_.num_gpus(); ++g) {
      engines_[g].advance(now_);
      while (true) {
        const auto [slot, t] = engines_[g].next_completion();
        if (slot < 0 || t > now_ + 1e-15) break;
        engines_[g].finish(slot, now_);
        // Find the resource id of this (gpu, stream).
        const int r = machine_.num_cpus() +
                      g * machine_.streams_per_gpu() + slot;
        SPX_ASSERT(machine_.resource(r).gpu == g &&
                   machine_.resource(r).stream == slot);
        stats_.busy[r] += now_ - task_start_[r];
        complete_task(r);
      }
    }
  }

  Scheduler& sched_;
  const Machine& machine_;
  const TaskTable& table_;
  const CostModel& model_;
  SimOptions options_;
  std::unique_ptr<DataDirectory> owned_directory_;
  DataDirectory& directory_;
  double total_flops_;

  double now_ = 0.0;
  std::vector<State> state_;
  std::vector<double> cpu_done_;
  std::vector<double> task_start_;
  std::vector<Staged> current_;
  std::vector<CacheModel> caches_;
  std::vector<DeviceEngine> engines_;
  std::vector<DeviceMemory> device_memory_;
  std::vector<double> dma_busy_until_;
  std::vector<int> dma_active_;
  std::vector<std::deque<int>> dma_queue_;
  std::vector<Staged> staged_;
  std::vector<Transfer> transfers_;
  std::map<std::pair<int, index_t>, int> inflight_;
  RunStats stats_;
};

}  // namespace

RunStats simulate(Scheduler& scheduler, const Machine& machine,
                  const TaskTable& table, const CostModel& model,
                  double total_flops, const SimOptions& options) {
  Simulation sim(scheduler, machine, table, model, total_flops, options);
  return sim.run();
}

}  // namespace spx::sim
