// Kernel cost models for the simulated platform.
//
// CPU GEMM: roofline of a size-dependent compute rate (small dimensions
// hurt blocking efficiency) against per-core memory bandwidth; the cache
// model discounts traffic for panels hot in the executing worker's cache.
//
// GPU GEMM: occupancy model -- a kernel needs ceil(M/T)*ceil(N/T) thread
// blocks; its attainable rate scales with the fraction of resident blocks
// it can fill, which is why small sparse updates underuse a Fermi and why
// extra streams pay off (paper Fig. 3).  The gapped sparse variant adds a
// coalescence penalty growing with how much taller the destination panel
// is than the update.  Variant efficiencies (ASTRA -15%, no-texture -5%,
// LDL^T -5%) come straight from the paper's §V-B.
//
// Complex arithmetic: flop counts follow the paper's convention (an op in
// the working precision counts once), so complex rates are ~4x lower in
// counted ops -- exactly why Table I's Z matrices report lower GFlop/s.
#pragma once

#include <vector>

#include "core/codelets.hpp"
#include "runtime/task.hpp"
#include "sim/platform.hpp"

namespace spx::perfmodel {
class PerfModel;
}  // namespace spx::perfmodel

namespace spx::sim {

enum class GpuGemmVariant { Cublas, Astra, Sparse, SparseLdlt };

/// Raw Fermi GEMM model (free functions so kernel studies can use them
/// without a symbolic structure).  Time of one C(m x n) -= A(m x k) *
/// B(n x k)^T kernel alone on the device; `gap_ratio` >= 1 is (rows of the
/// stored C panel) / m for the gapped sparse variants.
double gpu_gemm_seconds(const PlatformSpec& spec, double m, double n,
                        double k, GpuGemmVariant variant, double gap_ratio,
                        bool complex_arith = false);
/// SM demand of that kernel in [0, 1].
double gpu_gemm_demand(const PlatformSpec& spec, double m, double n);

/// Which LDL^T update kernel the runtime uses (see codelets.hpp): the
/// native scheduler prescales once per panel, the generic runtimes pay the
/// fused rescale in every update task.
enum class LdltStrategy { Prescaled, Fused };

class CostModel : public TaskCosts {
 public:
  struct Options {
    bool complex_arith = false;
    LdltStrategy ldlt = LdltStrategy::Fused;
    UpdateVariant cpu_variant = UpdateVariant::TempBuffer;
    double task_overhead = 2e-6;
    /// Optional calibrated model (docs/PERF_MODELS.md): CPU task times it
    /// covers replace the analytic roofline, grounding the simulated host
    /// in measured rates; the hot-cache discount is rescaled
    /// proportionally and the device side stays analytic (no real GPU to
    /// calibrate against).  Must outlive the CostModel.
    const perfmodel::PerfModel* measured = nullptr;
  };

  CostModel(const PlatformSpec& spec, const SymbolicStructure& st,
            Factorization kind, Options options);

  // ---- TaskCosts interface (placement estimates, priorities) ----------
  double panel_seconds(index_t p, ResourceKind kind) const override;
  double update_seconds(index_t p, index_t edge,
                        ResourceKind kind) const override;
  double transfer_seconds(double bytes) const override;

  // ---- extended queries for the simulator ------------------------------
  /// CPU update duration with cache hints for source/target panels.
  double cpu_update_seconds(index_t p, index_t edge, bool src_hot,
                            bool dst_hot) const;
  /// GPU kernel time when running alone on the device (excl. transfers).
  double gpu_update_seconds(index_t p, index_t edge) const;
  /// SM demand of the update's kernels in [0, 1]; concurrent kernels on a
  /// device sharing more than 1.0 total demand slow down proportionally.
  double gpu_update_demand(index_t p, index_t edge) const;

  double panel_bytes(index_t p) const { return panel_bytes_[p]; }
  const PlatformSpec& spec() const { return spec_; }
  const Options& options() const { return options_; }

  // ---- raw GEMM models (Fig. 3 benchmark uses these directly) ----------
  /// Time of one C(m x n) -= A*B^T kernel on the GPU, alone on the device.
  /// `gap_ratio` >= 1 is (rows of the stored C panel) / m.
  double gpu_gemm_seconds(double m, double n, double k,
                          GpuGemmVariant variant, double gap_ratio) const;
  /// SM demand of that kernel.
  double gpu_gemm_demand(double m, double n) const;
  /// CPU GEMM time (used for calibration cross-checks).
  double cpu_gemm_seconds(double m, double n, double k) const;

 private:
  double cpu_rate(double m, double n, double k) const;
  void precompute();

  PlatformSpec spec_;
  const SymbolicStructure* st_;
  Factorization kind_;
  Options options_;
  double arith_factor_;   ///< 4 for complex (counted-op convention)
  double bytes_factor_;   ///< scalar size in bytes

  // Precomputed per-task values.
  struct UpdateCost {
    double cpu_flop_time;   ///< compute-bound time
    double cpu_bytes;       ///< total traffic (cold caches)
    double src_bytes;       ///< traffic attributable to the source panel
    double dst_bytes;       ///< traffic attributable to the target panel
    double gpu_time;        ///< alone-on-device kernel time
    double gpu_demand;
  };
  std::vector<double> panel_cpu_seconds_;
  std::vector<double> panel_bytes_;
  std::vector<UpdateCost> update_;
  std::vector<index_t> update_base_;
};

}  // namespace spx::sim
