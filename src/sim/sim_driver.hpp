// Discrete-event execution driver.
//
// Drives a Scheduler (native / StarPU-like / PaRSEC-like -- the *same*
// objects the real threaded driver uses) against a simulated platform:
// CPU workers with a per-worker cache-reuse model, GPUs as shared-capacity
// engines with multiple streams, one DMA engine per GPU serializing PCIe
// transfers, and an MSI coherence directory deciding what must move.
// Task durations come from the calibrated CostModel; no numerical work is
// performed.  This is how the repository reproduces the paper's 12-core /
// 3-GPU Mirage results on a host with neither (DESIGN.md §2).
#pragma once

#include <memory>

#include "runtime/data_directory.hpp"
#include "runtime/run_stats.hpp"
#include "runtime/scheduler.hpp"
#include "runtime/trace.hpp"
#include "sim/cost_model.hpp"

namespace spx::sim {

struct SimOptions {
  /// Enables the driver-side transfer prefetch for schedulers that expose
  /// queued tasks (StarPU dmda).
  bool prefetch = true;
  /// Safety cap on simulated events (0 = unlimited).
  std::int64_t max_events = 0;
  /// Coherence directory to use (shared with a model-based scheduler so
  /// its transfer estimates see the true data placement); the driver owns
  /// one internally when null.
  DataDirectory* directory = nullptr;
  /// Optional trace sink: every task and transfer is recorded with its
  /// virtual start/end times (chrome-tracing export in trace.hpp).
  TraceRecorder* trace = nullptr;
};

/// Runs the scheduler to completion in virtual time; returns statistics.
/// `total_flops` is only used for the GFlop/s figure.
RunStats simulate(Scheduler& scheduler, const Machine& machine,
                  const TaskTable& table, const CostModel& model,
                  double total_flops, const SimOptions& options = {});

}  // namespace spx::sim
