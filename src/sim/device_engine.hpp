// Shared-capacity GPU compute engine for the simulator.
//
// Each kernel occupies a stream slot and demands a fraction of the
// device's SMs.  While total demand <= 1 all kernels progress at full
// speed (this is how extra streams rescue small sparse kernels, paper
// Fig. 3); beyond that, progress scales down proportionally -- a classic
// processor-sharing model with piecewise-constant rates, solved exactly
// by re-integrating remaining work at every arrival/departure.
//
// This is the *simulated* half of the shared engine model: it advances
// kernels in virtual time against an analytic capacity curve, while
// spx::DeviceEngine (runtime/device_engine.hpp) runs the same
// stream/transfer protocol with real threads and real staging memcpys.
// Both sides consume the same Machine resource numbering and the same
// DataDirectory coherence state, which is what makes scheduler-parity
// testing possible (docs/DEVICE_ENGINES.md, tests/test_hetero.cpp).
#pragma once

#include <limits>
#include <vector>

#include "common/error.hpp"

namespace spx::sim {

class DeviceEngine {
 public:
  explicit DeviceEngine(int num_streams)
      : active_(static_cast<std::size_t>(num_streams)) {}

  bool stream_busy(int s) const { return active_[s].running; }

  /// Starts a kernel on stream `s` at time `t`; `alone_seconds` is its
  /// duration with the device to itself, `demand` its SM fraction.
  void start(int s, double t, double alone_seconds, double demand) {
    SPX_ASSERT(!active_[s].running);
    advance(t);
    active_[s] = {true, alone_seconds, std::max(1e-6, demand)};
  }

  /// Removes the kernel on stream `s` (call after its completion event).
  void finish(int s, double t) {
    advance(t);
    SPX_ASSERT(active_[s].running && active_[s].remaining < 1e-6);
    active_[s].running = false;
  }

  /// Integrates progress up to time `t`.
  void advance(double t) {
    if (t < last_time_) t = last_time_;  // clock never goes backward
    const double f = rate_factor();
    for (auto& k : active_) {
      if (k.running) k.remaining = std::max(0.0, k.remaining - f * (t - last_time_));
    }
    last_time_ = t;
  }

  /// Next kernel completion (stream, absolute time); stream = -1 if idle.
  std::pair<int, double> next_completion() const {
    int best = -1;
    double best_t = std::numeric_limits<double>::infinity();
    const double f = rate_factor();
    for (std::size_t s = 0; s < active_.size(); ++s) {
      if (!active_[s].running) continue;
      const double t = last_time_ + active_[s].remaining / f;
      if (t < best_t) {
        best_t = t;
        best = static_cast<int>(s);
      }
    }
    return {best, best_t};
  }

  double total_demand() const {
    double d = 0.0;
    for (const auto& k : active_) {
      if (k.running) d += k.demand;
    }
    return d;
  }

 private:
  struct Kernel {
    bool running = false;
    double remaining = 0.0;  ///< remaining alone-seconds of work
    double demand = 0.0;
  };

  /// Processor sharing: full speed while total demand fits the device.
  double rate_factor() const {
    const double d = total_demand();
    return d <= 1.0 ? 1.0 : 1.0 / d;
  }

  std::vector<Kernel> active_;
  double last_time_ = 0.0;
};

}  // namespace spx::sim
