#include "sim/cost_model.hpp"

#include <algorithm>
#include <cmath>

#include "perfmodel/calibrated_costs.hpp"

namespace spx::sim {

CostModel::CostModel(const PlatformSpec& spec, const SymbolicStructure& st,
                     Factorization kind, Options options)
    : spec_(spec), st_(&st), kind_(kind), options_(options) {
  arith_factor_ = options.complex_arith ? 4.0 : 1.0;
  bytes_factor_ = options.complex_arith ? 16.0 : 8.0;
  precompute();
}

double CostModel::cpu_rate(double m, double n, double k) const {
  // Size-dependent efficiency: each small dimension hurts blocking.
  const double h = spec_.cpu_half_dim;
  const double eff = spec_.cpu_efficiency * (m / (m + h)) * (n / (n + h)) *
                     (k / (k + h));
  return spec_.cpu_peak_gflops * 1e9 * eff / arith_factor_;
}

double CostModel::cpu_gemm_seconds(double m, double n, double k) const {
  const double flop_time = flops_gemm(m, n, k) / cpu_rate(m, n, k);
  const double bytes = bytes_factor_ * (m * k + n * k + 2.0 * m * n);
  return std::max(flop_time, bytes / spec_.cpu_mem_bw);
}

double gpu_gemm_demand(const PlatformSpec& spec, double m, double n) {
  const double t = spec.gpu_tile;
  const double blocks = std::ceil(m / t) * std::ceil(n / t);
  // Saturating occupancy: also the fraction of attainable rate the kernel
  // reaches alone (rate and demand must agree so concurrent streams sum
  // to exactly the device peak once saturated).
  return blocks / (blocks + spec.gpu_block_half);
}

double gpu_gemm_seconds(const PlatformSpec& spec, double m, double n,
                        double k, GpuGemmVariant variant, double gap_ratio,
                        bool complex_arith) {
  double eff = 1.0;
  switch (variant) {
    case GpuGemmVariant::Cublas:
      break;
    case GpuGemmVariant::Astra:
      eff = spec.astra_efficiency;
      break;
    case GpuGemmVariant::Sparse:
      eff = spec.astra_efficiency * spec.no_texture_efficiency;
      break;
    case GpuGemmVariant::SparseLdlt:
      eff = spec.astra_efficiency * spec.no_texture_efficiency *
            spec.ldlt_gpu_efficiency;
      break;
  }
  if (variant == GpuGemmVariant::Sparse ||
      variant == GpuGemmVariant::SparseLdlt) {
    // Scatter into the gapped destination panel breaks coalescence; the
    // taller the panel relative to the computed rows, the worse
    // (paper Fig. 3, dotted curves).
    eff /= 1.0 + spec.gap_penalty_slope * std::max(0.0, gap_ratio - 1.0);
  }
  const double arith = complex_arith ? 4.0 : 1.0;
  const double occupancy = gpu_gemm_demand(spec, m, n);
  const double rate =
      spec.gpu_peak_gflops * 1e9 * eff * occupancy / arith;
  const double flop_time = flops_gemm(m, n, k) / rate;
  // Memory traffic: A, B read once; C read+written, amplified by the gaps.
  const double c_amp = (variant == GpuGemmVariant::Sparse ||
                        variant == GpuGemmVariant::SparseLdlt)
                           ? gap_ratio
                           : 1.0;
  const double bytes = (complex_arith ? 16.0 : 8.0) *
                       (m * k + n * k + 2.0 * m * n * c_amp);
  return std::max(flop_time, bytes / spec.gpu_mem_bw) +
         spec.gpu_launch_latency;
}

double CostModel::gpu_gemm_demand(double m, double n) const {
  return sim::gpu_gemm_demand(spec_, m, n);
}

double CostModel::gpu_gemm_seconds(double m, double n, double k,
                                   GpuGemmVariant variant,
                                   double gap_ratio) const {
  return sim::gpu_gemm_seconds(spec_, m, n, k, variant, gap_ratio,
                               options_.complex_arith);
}

void CostModel::precompute() {
  const SymbolicStructure& st = *st_;
  const index_t np = st.num_panels();
  panel_cpu_seconds_.resize(static_cast<std::size_t>(np));
  panel_bytes_.resize(static_cast<std::size_t>(np));
  update_base_.resize(static_cast<std::size_t>(np) + 1, 0);
  const int arrays = kind_ == Factorization::LU ? 2 : 1;
  const bool sym = kind_ != Factorization::LU;
  const bool ldlt = kind_ == Factorization::LDLT;

  for (index_t p = 0; p < np; ++p) {
    const Panel& panel = st.panels[p];
    panel_bytes_[p] = bytes_factor_ * panel.nrows * panel.width() * arrays;
    // Panel task: factor + TRSM at a reduced efficiency (skinny shapes,
    // divisions); roofline against one pass over the panel.
    double flops = st.panel_task_flops(p, kind_);
    if (ldlt && options_.ldlt == LdltStrategy::Prescaled) {
      // The native strategy prescales D*L^T once per panel here.
      flops += flops_scale(panel.nrows_below(), panel.width());
    }
    const double rate =
        cpu_rate(panel.nrows, panel.width(), panel.width()) *
        spec_.cpu_panel_efficiency;
    panel_cpu_seconds_[p] =
        std::max(flops / rate, 2.0 * panel_bytes_[p] / spec_.cpu_mem_bw);
    // Measured override: a calibrated table covering this panel replaces
    // the analytic estimate (the prescale extra stays analytic -- it is
    // bandwidth noise next to the factor + TRSM kernels).
    if (options_.measured != nullptr) {
      double s = 0.0;
      if (perfmodel::panel_task_seconds(*options_.measured, st, kind_, p,
                                        ResourceKind::Cpu, &s)) {
        panel_cpu_seconds_[p] = s;
      }
    }
    update_base_[p + 1] =
        update_base_[p] + static_cast<index_t>(st.targets[p].size());
  }

  update_.resize(static_cast<std::size_t>(update_base_[np]));
  for (index_t p = 0; p < np; ++p) {
    const Panel& sp = st.panels[p];
    const double w = sp.width();
    for (index_t e = 0; e < static_cast<index_t>(st.targets[p].size());
         ++e) {
      const UpdateEdge& edge = st.targets[p][e];
      const Panel& dp = st.panels[edge.dst];
      UpdateCost uc{0, 0, 0, 0, 0, 0};
      const index_t first_off = sp.blocks[edge.first_block].offset;
      const index_t last_off =
          edge.last_block < static_cast<index_t>(sp.blocks.size())
              ? sp.blocks[edge.last_block].offset
              : sp.nrows;
      for (index_t b = edge.first_block; b < edge.last_block; ++b) {
        const Block& blk = sp.blocks[b];
        const double nb = blk.height();
        // L-side GEMM rows (trapezoid for symmetric, from the first facing
        // block for LU; see codelets.cpp).
        const double m = sym ? sp.nrows - blk.offset : sp.nrows - first_off;
        double gemm_rate = cpu_rate(m, nb, w);
        if (ldlt && options_.ldlt == LdltStrategy::Fused) {
          // The fused kernel rescales B on the fly and loses the pure
          // vendor-GEMM shape (paper §V-A).
          gemm_rate *= spec_.ldlt_fused_cpu_efficiency;
        }
        uc.cpu_flop_time += flops_gemm(m, nb, w) / gemm_rate;
        if (ldlt && options_.ldlt == LdltStrategy::Fused) {
          uc.cpu_flop_time += flops_scale(nb, w) / spec_.cpu_mem_bw * 8.0;
        }
        const double gap = std::max(1.0, double(dp.nrows) / m);
        uc.gpu_time += gpu_gemm_seconds(
            m, nb, w,
            ldlt ? GpuGemmVariant::SparseLdlt : GpuGemmVariant::Sparse,
            gap);
        uc.gpu_demand += gpu_gemm_demand(m, nb);
        // CPU traffic: A and W/C per block.
        const double wbuf =
            options_.cpu_variant == UpdateVariant::TempBuffer
                ? 2.0 * m * nb  // buffer write + scatter read
                : 0.0;
        uc.src_bytes += bytes_factor_ * (m * w + nb * w);
        uc.dst_bytes += bytes_factor_ * 2.0 * m * nb;
        uc.cpu_bytes += bytes_factor_ * wbuf;
        if (kind_ == Factorization::LU) {
          // U-side mirror GEMM.
          const double mu = sp.nrows - last_off;
          if (mu > 0) {
            uc.cpu_flop_time += flops_gemm(mu, nb, w) / cpu_rate(mu, nb, w);
            uc.gpu_time += gpu_gemm_seconds(mu, nb, w,
                                            GpuGemmVariant::Sparse, gap);
            uc.gpu_demand += gpu_gemm_demand(mu, nb);
            uc.src_bytes += bytes_factor_ * (mu * w + nb * w);
            uc.dst_bytes += bytes_factor_ * 2.0 * mu * nb;
            uc.cpu_bytes += bytes_factor_ *
                            (options_.cpu_variant == UpdateVariant::TempBuffer
                                 ? 2.0 * mu * nb
                                 : 0.0);
          }
        }
      }
      uc.cpu_bytes += uc.src_bytes + uc.dst_bytes;
      uc.gpu_demand = std::min(1.0, uc.gpu_demand);
      // Measured override: scale the flop-time/traffic pair so the
      // cold-cache time equals the calibrated prediction while the
      // hot-cache discounts keep their relative size.
      if (options_.measured != nullptr) {
        double s = 0.0;
        if (perfmodel::update_task_seconds(*options_.measured, st, kind_, p,
                                           e, ResourceKind::Cpu, &s)) {
          const double cold =
              std::max(uc.cpu_flop_time, uc.cpu_bytes / spec_.cpu_mem_bw);
          if (cold > 0.0 && s > 0.0) {
            const double scale = s / cold;
            uc.cpu_flop_time *= scale;
            uc.cpu_bytes *= scale;
            uc.src_bytes *= scale;
            uc.dst_bytes *= scale;
          }
        }
      }
      update_[update_base_[p] + e] = uc;
    }
  }
}

double CostModel::panel_seconds(index_t p, ResourceKind kind) const {
  SPX_DEBUG_ASSERT(kind == ResourceKind::Cpu);
  (void)kind;
  return panel_cpu_seconds_[p] + options_.task_overhead;
}

double CostModel::update_seconds(index_t p, index_t edge,
                                 ResourceKind kind) const {
  const UpdateCost& uc = update_[update_base_[p] + edge];
  if (kind == ResourceKind::Cpu) {
    return std::max(uc.cpu_flop_time, uc.cpu_bytes / spec_.cpu_mem_bw) +
           options_.task_overhead;
  }
  return uc.gpu_time + options_.task_overhead;
}

double CostModel::transfer_seconds(double bytes) const {
  if (bytes <= 0.0) return 0.0;
  return spec_.pcie_latency + bytes / spec_.pcie_bw;
}

double CostModel::cpu_update_seconds(index_t p, index_t edge, bool src_hot,
                                     bool dst_hot) const {
  const UpdateCost& uc = update_[update_base_[p] + edge];
  double bytes = uc.cpu_bytes;
  // A hot panel is streamed from cache instead of memory.
  if (src_hot) bytes -= uc.src_bytes;
  if (dst_hot) bytes -= uc.dst_bytes;
  return std::max(uc.cpu_flop_time, bytes / spec_.cpu_mem_bw) +
         options_.task_overhead;
}

double CostModel::gpu_update_seconds(index_t p, index_t edge) const {
  return update_[update_base_[p] + edge].gpu_time;
}

double CostModel::gpu_update_demand(index_t p, index_t edge) const {
  return update_[update_base_[p] + edge].gpu_demand;
}

}  // namespace spx::sim
