#include "sim/calibration.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/flops.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "kernels/dense.hpp"

namespace spx::sim {
namespace {

/// Best-of-`repeat` wall time of `fn` in seconds.
template <typename Fn>
double best_seconds(int repeat, Fn&& fn) {
  double best = 1e30;
  for (int r = 0; r < repeat; ++r) {
    Timer t;
    fn();
    best = std::min(best, t.elapsed());
  }
  return best;
}

double gemm_gflops(index_t m, index_t n, index_t k, int repeat) {
  Rng rng(1234);
  std::vector<real_t> a(static_cast<std::size_t>(m) * k);
  std::vector<real_t> b(static_cast<std::size_t>(n) * k);
  std::vector<real_t> c(static_cast<std::size_t>(m) * n, 0.0);
  for (auto& v : a) v = rng.uniform(-1, 1);
  for (auto& v : b) v = rng.uniform(-1, 1);
  const double secs = best_seconds(repeat, [&] {
    kernels::gemm_nt<real_t>(m, n, k, -1.0, a.data(), m, b.data(), n, 1.0,
                             c.data(), m);
  });
  return flops_gemm(m, n, k) / secs / 1e9;
}

}  // namespace

PlatformSpec calibrate_host(CalibrationReport* report, int repeat) {
  CalibrationReport rep;
  // Asymptotic and small-size GEMM rates.
  rep.gemm_large_gflops = gemm_gflops(384, 384, 384, repeat);
  rep.gemm_small_gflops = gemm_gflops(24, 24, 24, repeat * 16);

  // Streaming bandwidth (triad on an array far larger than caches).
  {
    const std::size_t n = 16 << 20;  // 128 MiB per array
    std::vector<real_t> a(n, 1.0), b(n, 2.0);
    const double secs = best_seconds(repeat, [&] {
      for (std::size_t i = 0; i < n; ++i) b[i] = a[i] * 0.5 + b[i];
    });
    rep.stream_bw = 3.0 * 8.0 * static_cast<double>(n) / secs;
  }

  // Panel kernel (POTRF) rate.
  {
    const index_t n = 192;
    Rng rng(77);
    std::vector<real_t> base(static_cast<std::size_t>(n) * n);
    for (index_t j = 0; j < n; ++j) {
      for (index_t i = 0; i < n; ++i) {
        base[i + static_cast<std::size_t>(j) * n] =
            i == j ? 2.0 * n : rng.uniform(-1, 1);
      }
    }
    std::vector<real_t> work;
    const double secs = best_seconds(repeat, [&] {
      work = base;
      kernels::potrf<real_t>(n, work.data(), n);
    });
    rep.potrf_gflops = flops_potrf(n) / secs / 1e9;
  }

  PlatformSpec spec;
  spec.max_cores = 1;  // calibration is single-threaded; caller may scale
  spec.max_gpus = 0;
  // Fold the measured asymptote into peak * efficiency, then fit the
  // efficiency knee from the small-size ratio:
  //   rate(d)/rate(inf) = (d/(d+h))^3  =>  h = d * (ratio^{-1/3} - 1).
  spec.cpu_efficiency = 0.98;
  spec.cpu_peak_gflops = rep.gemm_large_gflops / spec.cpu_efficiency;
  const double ratio =
      std::clamp(rep.gemm_small_gflops / rep.gemm_large_gflops, 0.05, 0.98);
  spec.cpu_half_dim = 24.0 * (std::pow(ratio, -1.0 / 3.0) - 1.0);
  spec.cpu_mem_bw = rep.stream_bw;
  spec.cpu_panel_efficiency =
      std::clamp(rep.potrf_gflops / rep.gemm_large_gflops, 0.1, 1.0);
  if (report != nullptr) *report = rep;
  return spec;
}

}  // namespace spx::sim
