// Host calibration: measures this machine's kernel rates and produces a
// PlatformSpec describing it, so the discrete-event simulator can be
// validated against *real* runs on the host (bench_validation).  This is
// the same procedure one would use to retarget the simulator at new
// hardware: measure a large GEMM (asymptotic rate), a small GEMM (the
// efficiency knee), a streaming triad (memory bandwidth), and a POTRF
// (panel-kernel efficiency).
#pragma once

#include "sim/platform.hpp"

namespace spx::sim {

struct CalibrationReport {
  double gemm_large_gflops = 0.0;
  double gemm_small_gflops = 0.0;
  double potrf_gflops = 0.0;
  double stream_bw = 0.0;  ///< bytes/s
};

/// Measures the host and returns a CPU-only PlatformSpec (max_gpus = 0).
/// `repeat` controls measurement time (higher = steadier numbers).
PlatformSpec calibrate_host(CalibrationReport* report = nullptr,
                            int repeat = 3);

}  // namespace spx::sim
