#include "sim/platform.hpp"

namespace spx::sim {

PlatformSpec mirage() { return PlatformSpec{}; }

PlatformSpec testbox() {
  PlatformSpec s;
  s.max_cores = 2;
  s.max_gpus = 1;
  return s;
}

}  // namespace spx::sim
