// Heterogeneous-execution scaling study on the *real* driver.
//
// Where bench_fig4 reproduces the paper's Figure 4 in virtual time
// (discrete-event simulation of the Mirage node), this bench runs the
// actual threaded driver with emulated accelerator engines: staging
// transfers really move panel bytes through per-device arenas, throttled
// to the configured link bandwidth/latency, while dmda places tasks
// against the live coherence directory.  Two paper axes are reproduced
// in shape:
//
//   * engine scaling (Fig. 4's axis): CPU-only vs CPU + 1..3 engines;
//   * transfer-compute overlap (Fig. 3's stream-overlap argument, §IV):
//     the same runs with prefetch disabled -- every device task then
//     stalls for its own staging, the paper's no-overlap baseline.
//
// The emulated engines compute at host speed (they are host threads), so
// unlike the simulator this bench cannot show a GFlop/s *gain* from
// offload; the placement model instead encodes the paper's CPU/GPU cost
// ratio so dmda offloads every update, and the interesting columns are
// wall-time, transfer volume, and the overlap delta.  The link is
// latency-dominated on purpose (many small panels, paper §II);
// SPX_HETERO_* environment knobs override the engine specs
// (docs/DEVICE_ENGINES.md).
//
// --smoke is the ctest gate: a CPU + 2-engine run must complete with
// nonzero H2D and D2H byte counters in the RunStats JSON, and overlap-on
// must beat overlap-off wall-time (min of --reps runs each).
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "core/analysis.hpp"
#include "core/factor_data.hpp"
#include "mat/generators.hpp"
#include "runtime/data_directory.hpp"
#include "runtime/device_engine.hpp"
#include "runtime/flop_costs.hpp"
#include "runtime/real_driver.hpp"
#include "runtime/starpu_scheduler.hpp"

using namespace spx;

namespace {

struct Workload {
  CscMatrix<real_t> a;
  Analysis an;
  CscMatrix<real_t> ap;  ///< permuted input, re-initialized per run
};

RunStats run_once(const Workload& w, int threads, int engines, bool overlap,
                  const EngineSpec& spec) {
  const SymbolicStructure& st = w.an.structure;
  FactorData<real_t> f(st, Factorization::LLT);
  f.initialize(w.ap);
  TaskTable table(st, Factorization::LLT);
  // The paper's premise, grafted onto an emulated device: updates run an
  // order of magnitude faster on the accelerator, so dmda offloads them
  // all and the bench exercises the staging machinery at full tilt.
  FlopCosts costs(table, /*cpu_gflops=*/0.05, /*gpu_speedup=*/10.0);
  if (engines == 0) {
    Machine machine(threads);
    StarpuScheduler sched(table, machine, costs);
    return execute_real(sched, machine, f);
  }
  Machine machine(std::max(1, threads - engines), engines, 1);
  DataDirectory directory(st, Factorization::LLT, sizeof(real_t), engines);
  StarpuOptions sopts;
  sopts.gpu_min_flops = 0;
  StarpuScheduler sched(table, machine, costs, sopts, &directory);
  RealDriverOptions dopts;
  HeteroOptions base;
  base.devices.assign(static_cast<std::size_t>(engines), spec);
  dopts.hetero = hetero_from_env(base);
  dopts.hetero.overlap = overlap;  // the ablation axis stays ours
  dopts.hetero.directory = &directory;
  return execute_real(sched, machine, f, dopts);
}

RunStats best_of(int reps, const Workload& w, int threads, int engines,
                 bool overlap, const EngineSpec& spec) {
  RunStats best;
  for (int i = 0; i < reps; ++i) {
    RunStats r = run_once(w, threads, engines, overlap, spec);
    if (i == 0 || r.makespan < best.makespan) best = r;
  }
  return best;
}

int fail(const char* what) {
  std::fprintf(stderr, "bench_hetero: FAILED: %s\n", what);
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const bool smoke = cli.get_flag("smoke");
  const auto n = static_cast<index_t>(cli.get_int("n", smoke ? 10 : 16));
  const int threads = static_cast<int>(cli.get_int("threads", smoke ? 4 : 6));
  const int reps = static_cast<int>(cli.get_int("reps", smoke ? 5 : 3));
  const int max_engines =
      static_cast<int>(cli.get_int("engines", smoke ? 2 : 3));
  EngineSpec spec;
  spec.bandwidth_gbps = cli.get_double("bw-gbps", 4.0);
  spec.latency_seconds = cli.get_double("latency-us", 300.0) * 1e-6;
  spec.memory_bytes = cli.get_double("mem-mb", 256.0) * 1024 * 1024;
  cli.check_unknown();

  Workload w;
  w.a = gen::grid3d_laplacian(n, n, n);
  w.an = analyze(w.a);
  w.ap = permute_symmetric(w.a, w.an.perm);

  std::printf(
      "bench_hetero: grid3d(%d^3), %d threads, emulated link %.1f GB/s + "
      "%.0f us latency (real driver, starpu-dmda, all updates offloaded)\n",
      static_cast<int>(n), threads, spec.bandwidth_gbps,
      spec.latency_seconds * 1e6);
  std::printf("%-14s | %9s %9s %7s | %9s %8s %6s %8s\n", "config",
              "off [s]", "on [s]", "gain", "H2D MB", "D2H MB", "evict",
              "stall[s]");

  RunStats smoke_on, smoke_off;
  for (int e = 0; e <= max_engines; ++e) {
    const RunStats off = best_of(reps, w, threads, e, false, spec);
    const RunStats on =
        e == 0 ? off : best_of(reps, w, threads, e, true, spec);
    char name[32];
    std::snprintf(name, sizeof name, e == 0 ? "cpu-only" : "cpu + %d eng",
                  e);
    std::printf("%-14s | %9.4f %9.4f %6.1f%% | %9.2f %8.2f %6lld %8.4f\n",
                name, off.makespan, on.makespan,
                e == 0 ? 0.0 : 100.0 * (1.0 - on.makespan / off.makespan),
                on.bytes_h2d / 1e6, on.bytes_d2h / 1e6,
                static_cast<long long>(on.gpu_evictions),
                on.contention.total_stage_wait());
    if (e == 2) {
      smoke_on = on;
      smoke_off = off;
    }
  }

  if (!smoke) return 0;

  // ---- ctest gate ------------------------------------------------------
  if (max_engines < 2) return fail("--smoke needs --engines >= 2");
  const std::string j = to_json(smoke_on).dump();
  if (j.find("\"bytes_h2d\"") == std::string::npos ||
      j.find("\"bytes_d2h\"") == std::string::npos) {
    return fail("RunStats JSON lacks transfer-byte keys");
  }
  if (!(smoke_on.bytes_h2d > 0)) return fail("no H2D traffic");
  if (!(smoke_on.bytes_d2h > 0)) return fail("no D2H traffic");
  if (!(smoke_on.tasks_gpu > 0)) return fail("nothing offloaded");
  if (!(smoke_on.makespan < smoke_off.makespan)) {
    std::fprintf(stderr, "overlap on %.4fs vs off %.4fs\n",
                 smoke_on.makespan, smoke_off.makespan);
    return fail("transfer-compute overlap did not help");
  }
  std::printf("smoke: OK (overlap %.4fs < no-overlap %.4fs, %.1f MB H2D, "
              "%.1f MB D2H)\n",
              smoke_on.makespan, smoke_off.makespan,
              smoke_on.bytes_h2d / 1e6, smoke_on.bytes_d2h / 1e6);
  return 0;
}
