// Ablation studies over the design knobs DESIGN.md §5 calls out:
//   1. amalgamation fill budget (the paper raises it to 12% for GPUs),
//   2. panel-split width (task granularity),
//   3. GPU offload flop threshold,
//   4. streams per GPU,
//   5. subtree merging (the paper's future-work granularity knob),
//   6. native static mapping (list scheduling vs proportional mapping),
//   7. StarPU scheduling policy (eager vs dmda).
// One mid-sized SPD surrogate, simulated Mirage node.
#include "bench_common.hpp"

using namespace spx;
using namespace spx::bench;

namespace {

Analysis analyze_with(const CscMatrix<real_t>& a, double fill,
                      index_t width) {
  AnalysisOptions opts;
  opts.symbolic.amalgamation.fill_ratio = fill;
  opts.symbolic.max_panel_width = width;
  return analyze(a, opts);
}

double gf(const Analysis& an, const SimRunConfig& cfg) {
  return simulate_run(an, Factorization::LLT, cfg).gflops;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const double scale = cli.get_double("scale", 1.0);
  cli.check_unknown();

  const auto a =
      build_surrogate_d(surrogate_by_name("Flan"), scale);
  std::printf("Ablations on the Flan surrogate (n=%d)\n\n", a.ncols());

  // 1+2: analysis knobs (fill x width), CPU-only and 3-GPU runs.
  std::printf(
      "1/2. amalgamation fill & panel width (parsec; GFlop/s cpu12 / "
      "12c+3GPUx3s)\n");
  print_rule(74);
  std::printf("%6s %6s | %9s %9s %9s | %9s %9s\n", "fill", "width",
              "panels", "nnzL(M)", "GFlop", "cpu12", "gpu3");
  print_rule(74);
  for (const double fill : {0.0, 0.06, 0.12, 0.25}) {
    for (const index_t width : {64, 128, 256}) {
      const Analysis an = analyze_with(a, fill, width);
      SimRunConfig cpu;
      cpu.scheduler = "parsec";
      SimRunConfig gpu = cpu;
      gpu.gpus = 3;
      gpu.streams_per_gpu = 3;
      std::printf("%6.2f %6d | %9d %9.1f %9.1f | %9.1f %9.1f\n", fill,
                  width, an.structure.num_panels(),
                  an.structure.nnz_factor / 1e6,
                  an.total_flops(Factorization::LLT) / 1e9, gf(an, cpu),
                  gf(an, gpu));
    }
  }
  print_rule(74);

  const Analysis an = analyze_with(a, 0.12, 128);

  // 3: offload threshold.
  std::printf("\n3. GPU offload threshold (parsec, 12c + 1 GPU, 3 "
              "streams)\n");
  for (const double thr : {2e4, 2e5, 2e6, 2e7}) {
    SimRunConfig cfg;
    cfg.scheduler = "parsec";
    cfg.gpus = 1;
    cfg.streams_per_gpu = 3;
    cfg.gpu_min_flops = thr;
    const RunStats st = simulate_run(an, Factorization::LLT, cfg);
    std::printf("  threshold %7.0e flops -> %7.1f GFlop/s (%5d gpu "
                "tasks, %.2f GB H2D)\n",
                thr, st.gflops, (int)st.tasks_gpu, st.bytes_h2d / 1e9);
  }

  // 4: streams per GPU.
  std::printf("\n4. streams per GPU (parsec, 12c + 3 GPUs)\n");
  for (const int s : {1, 2, 3}) {
    SimRunConfig cfg;
    cfg.scheduler = "parsec";
    cfg.gpus = 3;
    cfg.streams_per_gpu = s;
    std::printf("  %d stream(s) -> %7.1f GFlop/s\n", s,
                gf(an, cfg));
  }

  // 5: subtree merging (paper future work: bigger tasks at the bottom of
  // the elimination tree to cut scheduler overhead).
  std::printf("\n5. subtree merge threshold (parsec, 12 cores; paper "
              "future work)\n");
  for (const double merge : {0.0, 1e-4, 1e-3, 1e-2}) {
    SimRunConfig cfg;
    cfg.scheduler = "parsec";
    cfg.subtree_merge_seconds = merge;
    std::printf("  merge %7.0es -> %7.1f GFlop/s\n", merge, gf(an, cfg));
  }

  // 6: native static mapping strategy.
  std::printf("\n6. native static mapping (12 cores)\n");
  for (const char* sched : {"native", "native-prop"}) {
    SimRunConfig cfg;
    cfg.scheduler = sched;
    std::printf("  %-12s -> %7.1f GFlop/s\n", sched, gf(an, cfg));
  }

  // 7: StarPU policy.
  std::printf("\n7. StarPU policy (12 cores, 0 and 2 GPUs)\n");
  for (const char* pol : {"starpu-eager", "starpu"}) {
    for (const int g : {0, 2}) {
      SimRunConfig cfg;
      cfg.scheduler = pol;
      cfg.gpus = g;
      std::printf("  %-14s %d GPU -> %7.1f GFlop/s\n", pol, g,
                  gf(an, cfg));
    }
  }
  return 0;
}
