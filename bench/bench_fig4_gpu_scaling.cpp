// Reproduction of Figure 4: GPU scaling study.
//
// GFlop/s of the factorization with twelve CPU cores plus zero to three
// GPUs of the simulated Mirage node:
//   * native PASTIX (CPU-only) as the reference bar;
//   * StarPU-like runs (a CPU worker is removed per GPU, single stream,
//     transfer prefetch);
//   * PaRSEC-like runs with 1 stream and with 3 streams per GPU.
// Expected shape (paper §V-C): both runtimes get significant speedup from
// GPUs and scale over 1..3 devices; PaRSEC's 3-stream mode beats its
// 1-stream mode (small kernels overlap); afshell10 is too small to
// benefit.
#include "bench_common.hpp"

using namespace spx;
using namespace spx::bench;

namespace {

double run(const BenchMatrix& m, const std::string& sched, int gpus,
           int streams) {
  SimRunConfig cfg;
  cfg.scheduler = sched;
  cfg.cores = 12;
  cfg.gpus = gpus;
  cfg.streams_per_gpu = streams;
  cfg.complex_arith = m.complex_arith();
  return simulate_run(m.analysis, m.spec.method, cfg).gflops;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const double scale = cli.get_double("scale", 1.0);
  const std::string only = cli.get("matrix", "");
  cli.check_unknown();

  const auto matrices = load_matrices(scale, only);

  std::printf(
      "Figure 4: GFlop/s with 12 cores + 0..3 GPUs (simulated Mirage "
      "node)\n");
  print_rule(118);
  std::printf("%-22s %8s |", "matrix", "PASTIX");
  for (int g = 0; g <= 3; ++g) std::printf(" %7s%d", "SPU g", g);
  std::printf(" |");
  for (int g = 0; g <= 3; ++g) std::printf(" %6s%d", "P1s g", g);
  std::printf(" |");
  for (int g = 1; g <= 3; ++g) std::printf(" %6s%d", "P3s g", g);
  std::printf("\n");
  print_rule(118);

  for (const BenchMatrix& m : matrices) {
    std::printf("%-22s %8.1f |", label(m.spec).c_str(),
                run(m, "native", 0, 1));
    for (int g = 0; g <= 3; ++g) std::printf(" %8.1f", run(m, "starpu", g, 1));
    std::printf(" |");
    for (int g = 0; g <= 3; ++g) std::printf(" %7.1f", run(m, "parsec", g, 1));
    std::printf(" |");
    for (int g = 1; g <= 3; ++g) std::printf(" %7.1f", run(m, "parsec", g, 3));
    std::printf("\n");
  }
  print_rule(118);
  std::printf(
      "columns: PASTIX = native CPU reference; SPU gN = StarPU-like with N "
      "GPUs;\nP1s/P3s gN = PaRSEC-like with N GPUs and 1 or 3 streams per "
      "GPU\n");
  return 0;
}
