// Simulator validation: real execution vs simulated prediction on THIS
// host.
//
// The paper-scale figures run on a *simulated* Mirage node (DESIGN.md §2).
// This bench backs that methodology: it calibrates the host's kernel
// rates, points the simulator at the calibrated spec, and compares
// predicted factorization times against real single-worker runs of the
// same schedules.  Agreement within a few tens of percent across matrices
// and factorization kinds is what makes the simulated scaling studies
// trustworthy.
#include <optional>

#include "bench_common.hpp"
#include "core/solver.hpp"
#include "perfmodel/perf_model.hpp"
#include "sim/calibration.hpp"

using namespace spx;
using namespace spx::bench;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const double scale = cli.get_double("scale", 0.15);
  // Calibrated per-kernel model (bench_calibration output): replaces the
  // simulator's analytic CPU roofline with measured task times, which
  // tightens the real/sim agreement this bench quantifies.
  const std::string perf_model = cli.get("perf-model", "");
  // When > 0, also time a blocked nrhs-column solve_multi after each real
  // factorization (the solve path the service batches into).
  const auto nrhs = static_cast<index_t>(cli.get_int("nrhs", 0));
  cli.check_unknown();

  std::optional<perfmodel::PerfModel> measured;
  if (!perf_model.empty()) {
    std::string err;
    measured = perfmodel::PerfModel::load(perf_model, &err);
    if (!measured) {
      std::fprintf(stderr, "perf model skipped: %s\n", err.c_str());
    }
  }

  sim::CalibrationReport rep;
  sim::PlatformSpec host = sim::calibrate_host(&rep);
  std::printf("host calibration: gemm %.2f GFlop/s (large) / %.2f (small), "
              "potrf %.2f, stream %.2f GB/s -> half_dim %.1f\n\n",
              rep.gemm_large_gflops, rep.gemm_small_gflops,
              rep.potrf_gflops, rep.stream_bw / 1e9, host.cpu_half_dim);

  std::printf("%-22s %-10s | %9s %9s %7s\n", "matrix", "kind", "real(s)",
              "sim(s)", "ratio");
  print_rule(66);
  double worst = 1.0;
  for (const SurrogateSpec& spec : paper_surrogates()) {
    if (spec.prec != Precision::D) continue;  // keep the run short
    const auto a = build_surrogate_d(spec, scale);
    AnalysisOptions aopts;
    aopts.symbolic.amalgamation.fill_ratio = 0.12;
    aopts.symbolic.max_panel_width = 128;

    // Real single-worker run through the PaRSEC-like runtime.
    SolverOptions sopts;
    sopts.runtime = RuntimeKind::Parsec;
    sopts.num_threads = 1;
    sopts.analysis = aopts;
    Solver<double> solver(sopts);
    solver.analyze(a);
    solver.factorize(a, spec.method);
    const double real_s = solver.last_factorization_stats().makespan;

    // Simulated prediction on the calibrated host platform.
    SimRunConfig cfg;
    cfg.scheduler = "parsec";
    cfg.cores = 1;
    cfg.platform = host;
    if (measured) cfg.perf_model = &*measured;
    const double sim_s =
        simulate_run(solver.analysis(), spec.method, cfg).makespan;

    const double ratio = real_s / sim_s;
    worst = std::max(worst, std::max(ratio, 1.0 / ratio));
    std::printf("%-22s %-10s | %9.3f %9.3f %6.2fx", label(spec).c_str(),
                to_string(spec.method), real_s, sim_s, ratio);
    if (nrhs > 0) {
      std::vector<double> block(static_cast<std::size_t>(a.ncols()) *
                                    static_cast<std::size_t>(nrhs),
                                1.0);
      Timer tsolve;
      solver.solve_multi(block, nrhs);
      std::printf("  solve x%d: %.4fs", static_cast<int>(nrhs),
                  tsolve.elapsed());
    }
    std::printf("\n");
  }
  print_rule(66);
  std::printf("worst real/sim discrepancy: %.2fx %s\n", worst,
              worst < 2.0 ? "(model validated within 2x)"
                          : "(model drift: recalibrate?)");
  return 0;
}
