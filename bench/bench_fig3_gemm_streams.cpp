// Reproduction of Figure 3: multi-stream DGEMM kernel study.
//
// The paper benchmarks C = C - A*B^T with A (M x K), B (N x K), N = K =
// 128, for three kernel implementations -- cuBLAS, the auto-tuned ASTRA
// kernel (~ -15%), and the sparse adaptation of ASTRA that scatters into a
// gapped destination panel twice as tall as the update (blocks of ~200
// rows) -- each with 1, 2 or 3 CUDA streams; 100 calls are distributed
// round-robin over the streams.  We replay exactly that experiment on the
// simulated Fermi M2070: per-kernel times/demands from the occupancy +
// roofline model, stream overlap from the shared-capacity device engine.
//
// Expected shape: one stream is always worst; a second stream helps
// everywhere (a lot below M~1000); a third only below M~1000; the sparse
// kernel sits below ASTRA and degrades as the destination panel grows
// taller.
#include <cstdio>
#include <vector>

#include "common/cli.hpp"
#include "sim/cost_model.hpp"
#include "sim/device_engine.hpp"
#include "sim/platform.hpp"

using namespace spx;
using sim::DeviceEngine;
using sim::GpuGemmVariant;

namespace {

/// Replays `calls` identical kernels round-robin over `streams` streams
/// and returns the aggregate GFlop/s.
double replay(const sim::PlatformSpec& spec, double m, double n, double k,
              GpuGemmVariant variant, double gap, int streams, int calls) {
  const double dur = sim::gpu_gemm_seconds(spec, m, n, k, variant, gap);
  const double demand = sim::gpu_gemm_demand(spec, m, n);
  DeviceEngine dev(streams);
  std::vector<int> remaining(streams, 0);
  for (int c = 0; c < calls; ++c) remaining[c % streams]++;
  double now = 0.0;
  // Fill all streams, then replace each finishing kernel with the next.
  for (int s = 0; s < streams; ++s) {
    if (remaining[s] > 0) {
      dev.start(s, now, dur, demand);
      remaining[s]--;
    }
  }
  while (true) {
    const auto [slot, t] = dev.next_completion();
    if (slot < 0) break;
    now = t;
    dev.finish(slot, now);
    if (remaining[slot] > 0) {
      dev.start(slot, now, dur, demand);
      remaining[slot]--;
    }
  }
  return calls * flops_gemm(m, n, k) / now / 1e9;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const int calls = static_cast<int>(cli.get_int("calls", 100));
  const double gap = cli.get_double("gap", 2.0);  // panel twice as tall
  cli.check_unknown();

  const sim::PlatformSpec spec = sim::mirage();
  const double n = 128, k = 128;

  std::printf(
      "Figure 3: DGEMM kernel GFlop/s vs M (N=K=128, simulated M2070, %d "
      "calls round-robin)\n",
      calls);
  std::printf("cuBLAS square-matrix peak: %.0f GFlop/s\n\n",
              spec.gpu_peak_gflops);
  std::printf("%6s |", "M");
  for (const char* impl : {"cublas", "astra", "sparse"}) {
    for (int s = 1; s <= 3; ++s) std::printf(" %6s-%d", impl, s);
    std::printf(" |");
  }
  std::printf("\n");
  for (int i = 0; i < 7 + 3 * 28; ++i) std::putchar('-');
  std::putchar('\n');

  const double ms[] = {128,  256,  384,  512,  768,  1000, 1500,
                       2000, 3000, 4000, 5000, 6000, 8000, 10000};
  for (const double m : ms) {
    std::printf("%6.0f |", m);
    const GpuGemmVariant variants[] = {GpuGemmVariant::Cublas,
                                       GpuGemmVariant::Astra,
                                       GpuGemmVariant::Sparse};
    for (const GpuGemmVariant v : variants) {
      const double g = v == GpuGemmVariant::Sparse ? gap : 1.0;
      for (int s = 1; s <= 3; ++s) {
        std::printf(" %8.1f", replay(spec, m, n, k, v, g, s, calls));
      }
      std::printf(" |");
    }
    std::printf("\n");
  }

  // The paper's accompanying observation: the sparse kernel degrades as
  // the destination panel gets taller (flops per byte drops).
  std::printf("\nsparse kernel (1 stream, M=4000) vs destination panel "
              "height ratio:\n");
  for (const double g : {1.0, 1.5, 2.0, 3.0, 4.0}) {
    std::printf("  gap %.1fx -> %7.1f GFlop/s\n", g,
                replay(spec, 4000, n, k, GpuGemmVariant::Sparse, g, 1,
                       calls));
  }
  return 0;
}
