// Microbenchmarks of the real host kernels (google-benchmark): the dense
// BLAS substrate, the two sparse-update code paths, and the end-to-end
// sequential factorization.  These are the numbers a host calibration
// would feed into the simulator's CPU model.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>

#include "common/rng.hpp"
#include "core/analysis.hpp"
#include "core/sequential.hpp"
#include "kernels/dense.hpp"
#include "kernels/dispatch.hpp"
#include "kernels/scatter.hpp"
#include "mat/generators.hpp"

namespace spx {
namespace {
namespace k = kernels;

void BM_GemmNT(benchmark::State& state) {
  const index_t m = static_cast<index_t>(state.range(0));
  const index_t n = 128, kk = 128;
  Rng rng(1);
  std::vector<real_t> a(static_cast<std::size_t>(m) * kk),
      b(static_cast<std::size_t>(n) * kk), c(static_cast<std::size_t>(m) * n);
  for (auto& v : a) v = rng.uniform(-1, 1);
  for (auto& v : b) v = rng.uniform(-1, 1);
  for (auto _ : state) {
    k::gemm_nt<real_t>(m, n, kk, -1.0, a.data(), m, b.data(), n, 1.0,
                       c.data(), m);
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["GFlop/s"] = benchmark::Counter(
      flops_gemm(m, n, kk) * static_cast<double>(state.iterations()) / 1e9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_GemmNT)->Arg(64)->Arg(256)->Arg(1024)->Iterations(20);

// Square m=n=k GEMM: the acceptance shape of the dispatch layer
// (docs/KERNELS.md records the generic-vs-SIMD ratio at 256+).
void BM_GemmNTSquare(benchmark::State& state) {
  const index_t n = static_cast<index_t>(state.range(0));
  Rng rng(11);
  std::vector<real_t> a(static_cast<std::size_t>(n) * n),
      b(static_cast<std::size_t>(n) * n), c(static_cast<std::size_t>(n) * n);
  for (auto& v : a) v = rng.uniform(-1, 1);
  for (auto& v : b) v = rng.uniform(-1, 1);
  for (auto _ : state) {
    k::gemm_nt<real_t>(n, n, n, -1.0, a.data(), n, b.data(), n, 1.0,
                       c.data(), n);
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["GFlop/s"] = benchmark::Counter(
      flops_gemm(n, n, n) * static_cast<double>(state.iterations()) / 1e9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_GemmNTSquare)->Arg(256)->Arg(384)->Iterations(20);

void BM_GemmNTSquareFp32(benchmark::State& state) {
  const index_t n = static_cast<index_t>(state.range(0));
  Rng rng(12);
  std::vector<real32_t> a(static_cast<std::size_t>(n) * n),
      b(static_cast<std::size_t>(n) * n), c(static_cast<std::size_t>(n) * n);
  for (auto& v : a) v = static_cast<real32_t>(rng.uniform(-1, 1));
  for (auto& v : b) v = static_cast<real32_t>(rng.uniform(-1, 1));
  for (auto _ : state) {
    k::gemm_nt<real32_t>(n, n, n, -1.0f, a.data(), n, b.data(), n, 1.0f,
                         c.data(), n);
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["GFlop/s"] = benchmark::Counter(
      flops_gemm(n, n, n) * static_cast<double>(state.iterations()) / 1e9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_GemmNTSquareFp32)->Arg(256)->Arg(384)->Iterations(20);

void BM_GemmNTComplex(benchmark::State& state) {
  const index_t m = static_cast<index_t>(state.range(0));
  const index_t n = 64, kk = 64;
  Rng rng(2);
  std::vector<complex_t> a(static_cast<std::size_t>(m) * kk),
      b(static_cast<std::size_t>(n) * kk), c(static_cast<std::size_t>(m) * n);
  for (auto& v : a) v = rng.scalar<complex_t>();
  for (auto& v : b) v = rng.scalar<complex_t>();
  for (auto _ : state) {
    k::gemm_nt<complex_t>(m, n, kk, complex_t(-1.0), a.data(), m, b.data(),
                          n, complex_t(1.0), c.data(), m);
    benchmark::DoNotOptimize(c.data());
  }
}
BENCHMARK(BM_GemmNTComplex)->Arg(256)->Iterations(20);

void BM_Potrf(benchmark::State& state) {
  const index_t n = static_cast<index_t>(state.range(0));
  Rng rng(3);
  std::vector<real_t> base(static_cast<std::size_t>(n) * n);
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i < n; ++i) {
      base[i + static_cast<std::size_t>(j) * n] =
          (i == j) ? n + 1.0 : 0.5 * rng.uniform(-1, 1);
    }
  }
  for (auto _ : state) {
    auto a = base;
    k::potrf<real_t>(n, a.data(), n);
    benchmark::DoNotOptimize(a.data());
  }
}
BENCHMARK(BM_Potrf)->Arg(64)->Arg(128)->Arg(256)->Iterations(20);

void BM_TrsmRLT(benchmark::State& state) {
  const index_t m = static_cast<index_t>(state.range(0)), n = 128;
  Rng rng(4);
  std::vector<real_t> l(static_cast<std::size_t>(n) * n),
      x(static_cast<std::size_t>(m) * n);
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = j; i < n; ++i) {
      l[i + static_cast<std::size_t>(j) * n] =
          (i == j) ? n + 1.0 : rng.uniform(-1, 1);
    }
  }
  for (auto& v : x) v = rng.uniform(-1, 1);
  for (auto _ : state) {
    k::trsm_right_lower_trans<real_t>(m, n, l.data(), n, x.data(), m, false);
    benchmark::DoNotOptimize(x.data());
  }
}
BENCHMARK(BM_TrsmRLT)->Arg(256)->Arg(1024)->Iterations(20);

// The two sparse-update code paths of the paper (§V-B): contiguous GEMM +
// scatter (CPU kernel) vs segmented GEMM straight into the gapped panel
// (the GPU kernel's structure).
struct UpdateFixture {
  Analysis an = analyze(gen::grid3d_laplacian(14, 14, 14));
  FactorData<real_t> f{an.structure, Factorization::LLT};
  index_t src = -1;
  index_t edge = -1;

  UpdateFixture() {
    // Pick the heaviest update edge.
    double best = -1;
    for (index_t p = 0; p < an.structure.num_panels(); ++p) {
      for (index_t e = 0;
           e < static_cast<index_t>(an.structure.targets[p].size()); ++e) {
        const double fl = an.structure.update_task_flops(
            p, an.structure.targets[p][e], Factorization::LLT);
        if (fl > best) {
          best = fl;
          src = p;
          edge = e;
        }
      }
    }
    Rng rng(5);
    for (auto& v : std::span<real_t>(f.panel_l(0),
                                     (std::size_t)an.structure.factor_entries)) {
      v = rng.uniform(-0.1, 0.1);
    }
  }
};

void BM_UpdateTempBuffer(benchmark::State& state) {
  static UpdateFixture fx;
  Workspace<real_t> ws;
  for (auto _ : state) {
    apply_update(fx.f, fx.src, fx.an.structure.targets[fx.src][fx.edge],
                 UpdateVariant::TempBuffer, ws);
    benchmark::DoNotOptimize(fx.f.panel_l(0));
  }
}
BENCHMARK(BM_UpdateTempBuffer)->Iterations(50);

void BM_UpdateDirect(benchmark::State& state) {
  static UpdateFixture fx;
  Workspace<real_t> ws;
  for (auto _ : state) {
    apply_update(fx.f, fx.src, fx.an.structure.targets[fx.src][fx.edge],
                 UpdateVariant::Direct, ws);
    benchmark::DoNotOptimize(fx.f.panel_l(0));
  }
}
BENCHMARK(BM_UpdateDirect)->Iterations(50);

void BM_SequentialCholesky(benchmark::State& state) {
  const auto a = gen::grid3d_laplacian(10, 10, 10);
  const Analysis an = analyze(a);
  const auto ap = permute_symmetric(a, an.perm);
  for (auto _ : state) {
    FactorData<real_t> f(an.structure, Factorization::LLT);
    f.initialize(ap);
    factorize_sequential(f);
    benchmark::DoNotOptimize(f.panel_l(0));
  }
  state.counters["GFlop/s"] = benchmark::Counter(
      an.total_flops(Factorization::LLT) *
          static_cast<double>(state.iterations()) / 1e9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SequentialCholesky)->Iterations(3);

}  // namespace

// --verify smoke mode (wired into ctest as bench_kernels_verify): runs a
// compact GEMM conformance check against the *_ref oracle for every ISA
// tier this host/build supports and prints the dispatch decision.  This is
// the CI guard that the selected variant is not silently wrong on the
// machine the benchmarks ran on.
template <typename T>
bool verify_type(const char* type_name, double tol_unit) {
  const index_t sizes[] = {1, 7, 48, 96, 129};
  bool all_ok = true;
  for (const k::Isa isa : k::Dispatch::instance().supported()) {
    k::ScopedIsaOverride force(isa);
    if (!force.ok()) continue;
    double worst = 0.0;
    Rng rng(31);
    for (const index_t m : sizes) {
      for (const index_t n : sizes) {
        for (const index_t kk : sizes) {
          std::vector<T> a(static_cast<std::size_t>(m) * kk),
              b(static_cast<std::size_t>(n) * kk),
              bn(static_cast<std::size_t>(kk) * n),
              c0(static_cast<std::size_t>(m) * n);
          for (auto& v : a) v = rng.scalar<T>();
          for (auto& v : b) v = rng.scalar<T>();
          for (auto& v : bn) v = rng.scalar<T>();
          for (auto& v : c0) v = rng.scalar<T>();
          auto ref = c0;
          auto got = c0;
          k::gemm_nt_ref<T>(m, n, kk, T(-1), a.data(), m, b.data(), n, T(1),
                            ref.data(), m);
          k::gemm_nt<T>(m, n, kk, T(-1), a.data(), m, b.data(), n, T(1),
                        got.data(), m);
          for (std::size_t i = 0; i < got.size(); ++i) {
            worst = std::max(
                worst, static_cast<double>(magnitude<T>(got[i] - ref[i])) /
                           std::max<index_t>(1, kk));
          }
          ref = c0;
          got = c0;
          k::gemm_nn_ref<T>(m, n, kk, T(-1), a.data(), m, bn.data(), kk,
                            T(1), ref.data(), m);
          k::gemm_nn<T>(m, n, kk, T(-1), a.data(), m, bn.data(), kk, T(1),
                        got.data(), m);
          for (std::size_t i = 0; i < got.size(); ++i) {
            worst = std::max(
                worst, static_cast<double>(magnitude<T>(got[i] - ref[i])) /
                           std::max<index_t>(1, kk));
          }
        }
      }
    }
    const bool ok = worst < tol_unit;
    std::printf("  %-8s %-8s max|err|/k = %.3e  %s\n", type_name,
                k::to_string(isa), worst, ok ? "OK" : "FAIL");
    all_ok = all_ok && ok;
  }
  return all_ok;
}

int run_verify() {
  std::printf("dispatch: %s\n", k::Dispatch::instance().describe().c_str());
  bool ok = verify_type<real_t>("fp64", 1e-12);
  ok = verify_type<real32_t>("fp32", 2e-4) && ok;
  std::printf("verify: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}

}  // namespace spx

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--verify") == 0) return spx::run_verify();
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
