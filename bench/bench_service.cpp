// Solve-service throughput bench: quantifies what the serving layer buys.
//
// Three experiments against one host:
//   1. cache     -- sustained factorize+solve round trips on a repeated
//                   pattern, analysis cache on vs off.  The cache removes
//                   the (value-independent) ordering + symbolic phase from
//                   every request after the first; the speedup column is
//                   the headline number (expect >= 2x when analysis
//                   dominates, as it does for 2D-grid patterns).
//   2. load      -- offered-load sweep: client threads submitting
//                   factorize+solve round trips; reports requests/s and
//                   p50/p99 end-to-end latency per load level.
//   3. overload  -- 4x more in-flight requests than a deliberately tiny
//                   admission queue admits: backpressure must convert the
//                   excess into immediate Rejected results (bounded
//                   memory, no deadlock) while admitted work completes.
//   4. faults    -- factorize traffic with an injected one-shot task fault:
//                   the retry loop must absorb it (attempt 2 succeeds) and
//                   the stats export must account for every retry and
//                   error code.  Reports the retry-induced latency tax.
//   5. timestep  -- the streaming workload the refactorize fast path is
//                   for: one pattern, fresh values every step.  Gates
//                   (hard): numeric-only refactorize sustains >= 2x the
//                   full analyze+factorize throughput; the fp32+refine
//                   policy serves at fp64 accuracy (backward error <=
//                   mixed_tolerance) with the quality-gate fallback to
//                   fp64 demonstrably exercised; and two tenants with
//                   4:1 scheduling weights split a saturated worker
//                   within 10% of 4:1.
//
// --smoke shrinks everything to a ctest-friendly second or two.
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <system_error>
#include <thread>
#include <utility>
#include <vector>

#include "common/cli.hpp"
#include "common/timer.hpp"
#include "mat/generators.hpp"
#include "net/client.hpp"
#include "net/http.hpp"
#include "net/protocol.hpp"
#include "obs/export.hpp"
#include "obs/obs.hpp"
#include "runtime/fault_injection.hpp"
#include "service/options_builder.hpp"
#include "service/solve_service.hpp"

using namespace spx;
using service::FactorizeResult;
using service::RequestStatus;
using service::ServiceOptions;
using service::SolveResult;
using service::SolveService;

namespace {

std::shared_ptr<const CscMatrix<real_t>> make_matrix(index_t nx) {
  return std::make_shared<const CscMatrix<real_t>>(
      gen::grid2d_laplacian(nx, nx));
}

struct LoadStats {
  double wall_s = 0;
  std::uint64_t completed = 0;
  std::uint64_t rejected = 0;
  std::uint64_t failed = 0;
  std::vector<double> latencies;  ///< seconds, completed requests only

  double throughput() const {
    return wall_s > 0 ? double(completed) / wall_s : 0.0;
  }
  double percentile(double p) const {
    if (latencies.empty()) return 0.0;
    std::vector<double> s = latencies;
    std::sort(s.begin(), s.end());
    const auto i = static_cast<std::size_t>(p * double(s.size() - 1));
    return s[i];
  }
};

/// `clients` threads each push `per_client` factorize+solve round trips
/// through `svc` against the same pattern (distinct tenants).
LoadStats run_clients(SolveService& svc,
                      const std::shared_ptr<const CscMatrix<real_t>>& a,
                      int clients, int per_client) {
  const std::vector<real_t> b(static_cast<std::size_t>(a->ncols()), 1.0);
  std::vector<LoadStats> per_thread(static_cast<std::size_t>(clients));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(clients));
  Timer wall;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      LoadStats& mine = per_thread[static_cast<std::size_t>(c)];
      const std::string tenant = "client-" + std::to_string(c);
      for (int i = 0; i < per_client; ++i) {
        Timer t;
        const FactorizeResult fr =
            svc.factorize(tenant, a, Factorization::LLT);
        if (fr.status == RequestStatus::Rejected) {
          ++mine.rejected;
          continue;
        }
        if (!fr.ok()) {
          ++mine.failed;
          continue;
        }
        const SolveResult sr = svc.solve(tenant, fr.factor, b);
        if (sr.status == RequestStatus::Rejected) {
          ++mine.rejected;
        } else if (!sr.ok()) {
          ++mine.failed;
        } else {
          ++mine.completed;
          mine.latencies.push_back(t.elapsed());
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  LoadStats total;
  total.wall_s = wall.elapsed();
  for (const LoadStats& p : per_thread) {
    total.completed += p.completed;
    total.rejected += p.rejected;
    total.failed += p.failed;
    total.latencies.insert(total.latencies.end(), p.latencies.begin(),
                           p.latencies.end());
  }
  return total;
}

int reconcile_failures = 0;

void reconcile(const char* what, double prom, std::uint64_t legacy) {
  if (prom == static_cast<double>(legacy)) return;
  std::fprintf(stderr, "  metrics mismatch: %s prom=%g legacy=%llu\n", what,
               prom, static_cast<unsigned long long>(legacy));
  ++reconcile_failures;
}

/// `bench_service --metrics`: the observability acceptance gate.
/// Runs an instrumented workload against a private registry + tracer,
/// proves the Prometheus scrape reconciles EXACTLY with the legacy
/// ServiceStats/RunStats counters, prints the snapshot, and measures the
/// full-trace makespan overhead against an obs-disabled pass.
int run_metrics_gate(const std::shared_ptr<const CscMatrix<real_t>>& a,
                     int workers, int requests) {
  obs::MetricsRegistry registry;
  obs::Tracer tracer;
  OptionsBuilder b;
  b.metrics(&registry)
      .tracer(&tracer)
      .runtime(RuntimeKind::Native)  // populate per-task counters/spans
      .threads(2)
      .workers(workers)
      .queue_capacity(4096)
      .cache_bytes(256ull << 20);

  std::printf("--- metrics: Prometheus scrape vs legacy stats ---\n");
  {
    SolveService svc(b.service_options());
    const FactorizeResult fr = svc.factorize("metrics", a,
                                             Factorization::LLT);
    if (!fr.ok()) {
      std::fprintf(stderr, "metrics warmup factorize failed: %s\n",
                   fr.error.c_str());
      return 1;
    }
    // RunStats reconciliation: after exactly one factorize, the driver's
    // per-task counters must equal that run's legacy task counts.
    double tasks_prom = 0;
    for (const auto& fam : registry.snapshot()) {
      if (fam.name != "spx_tasks_executed_total") continue;
      for (const auto& s : fam.series) tasks_prom += s.value;
    }
    reconcile("spx_tasks_executed_total vs RunStats tasks", tasks_prom,
              static_cast<std::uint64_t>(fr.stats.run.tasks_cpu +
                                         fr.stats.run.tasks_gpu));

    const LoadStats load = run_clients(svc, a, workers, requests);
    (void)load;
    const service::ServiceStats st = svc.stats();
    reconcile("spx_service_submitted_total",
              registry.value("spx_service_submitted_total"), st.submitted);
    reconcile("spx_service_completed_total",
              registry.value("spx_service_completed_total"), st.completed);
    reconcile("spx_service_failed_total",
              registry.value("spx_service_failed_total"), st.failed);
    reconcile("spx_service_rejected_total",
              registry.value("spx_service_rejected_total"), st.rejected);
    reconcile("spx_service_cancelled_total",
              registry.value("spx_service_cancelled_total"), st.cancelled);
    reconcile("spx_service_expired_total",
              registry.value("spx_service_expired_total"), st.expired);
    reconcile("spx_service_factorizes_total",
              registry.value("spx_service_factorizes_total"), st.factorizes);
    reconcile("spx_service_solves_total",
              registry.value("spx_service_solves_total"), st.solves);
    reconcile("spx_service_batches_total",
              registry.value("spx_service_batches_total"), st.batches);
    reconcile("spx_service_batched_rhs_total",
              registry.value("spx_service_batched_rhs_total"),
              st.batched_rhs);
    reconcile("spx_service_retries_total",
              registry.value("spx_service_retries_total"), st.retries);
    reconcile("spx_admission_queue_depth",
              registry.value("spx_admission_queue_depth"), st.queue_depth);
    for (std::size_t i = 0; i < service::kErrorCodeCount; ++i) {
      const char* code = to_string(static_cast<service::ErrorCode>(i));
      reconcile(code,
                registry.value("spx_service_errors_total",
                               {{"code", code}}),
                st.errors[i]);
    }
    reconcile("spx_analysis_cache_hits_total",
              registry.value("spx_analysis_cache_hits_total"),
              st.cache.hits);
    reconcile("spx_analysis_cache_misses_total",
              registry.value("spx_analysis_cache_misses_total"),
              st.cache.misses);
    reconcile("spx_analysis_cache_evictions_total",
              registry.value("spx_analysis_cache_evictions_total"),
              st.cache.evictions);
    if (reconcile_failures > 0) {
      std::fprintf(stderr,
                   "metrics gate FAILED: %d series diverge from the legacy "
                   "stats\n",
                   reconcile_failures);
      return 1;
    }
    std::printf("  every scraped series reconciles with ServiceStats/"
                "RunStats (%llu spans traced)\n\n",
                static_cast<unsigned long long>(tracer.total_recorded()));
    std::fputs(obs::prometheus_text(registry).c_str(), stdout);
  }

  // ---- full-trace overhead vs obs disabled ------------------------------
  // Same factorize rounds through the SPX_OBS seam switched on (registry +
  // tracer live) and off; the acceptance gate is < 5% makespan overhead.
  std::printf("\n--- metrics: full-trace overhead ---\n");
  const int rounds = std::max(4, requests / 2);
  double wall_on = 0, wall_off = 0;
  for (const bool on : {true, false}) {
    obs::MetricsRegistry reg;
    obs::Tracer tr;
    OptionsBuilder ob;
    ob.metrics(&reg).tracer(&tr).runtime(RuntimeKind::Native).threads(2)
        .workers(workers).queue_capacity(4096).cache_bytes(256ull << 20);
    SolveService svc(ob.service_options());
    (void)svc.factorize("overhead", a, Factorization::LLT);  // warm cache
    obs::set_enabled(on);
    Timer wall;
    for (int i = 0; i < rounds; ++i) {
      const FactorizeResult fr =
          svc.factorize("overhead", a, Factorization::LLT);
      if (!fr.ok()) {
        obs::set_enabled(true);
        std::fprintf(stderr, "overhead factorize failed: %s\n",
                     fr.error.c_str());
        return 1;
      }
    }
    (on ? wall_on : wall_off) = wall.elapsed();
    obs::set_enabled(true);
  }
  const double overhead =
      wall_off > 0 ? (wall_on - wall_off) / wall_off : 0.0;
  std::printf("  %d rounds: traced %.1fms, disabled %.1fms -> overhead "
              "%+.1f%% %s\n",
              rounds, wall_on * 1e3, wall_off * 1e3, overhead * 100.0,
              overhead < 0.05 ? "(< 5% gate: PASS)"
                              : "(>= 5% on this run/host)");
  return 0;
}

}  // namespace

// ---- --net: multi-process scale-out bench -------------------------------
//
// Forks N spx_shard processes and one spx_front, drives M client threads
// of factorize+solve round trips through the front over TCP, then sends
// SIGTERM to one shard mid-run.  The run passes only if (a) every request
// eventually completes -- retryable bounces (Draining/Overloaded/NoShard/
// UnknownFactor, service-level Rejected) are retried, anything else is a
// lost request -- and (b) the per-shard analysis-cache hit rate scraped
// from /metrics is no worse than a single-process service run of the same
// request mix (routing affinity keeps each pattern's analysis on one
// shard, so sharding must not cost cache hits).

#ifndef SPX_SHARD_BIN
#define SPX_SHARD_BIN "spx_shard"
#endif
#ifndef SPX_FRONT_BIN
#define SPX_FRONT_BIN "spx_front"
#endif

struct ChildProc {
  pid_t pid = -1;
  std::uint16_t port = 0;
  std::uint16_t http_port = 0;
  std::string name;
};

/// fork+exec `bin` with --print-ports; parses "port http_port" from the
/// child's stdout.  Exits the bench on spawn failure.
ChildProc spawn_with_ports(const char* bin, std::string name,
                           std::vector<std::string> args) {
  int fds[2];
  if (::pipe(fds) != 0) {
    std::perror("pipe");
    std::exit(1);
  }
  args.insert(args.begin(), bin);
  args.push_back("--print-ports");
  const pid_t pid = ::fork();
  if (pid < 0) {
    std::perror("fork");
    std::exit(1);
  }
  if (pid == 0) {
    ::close(fds[0]);
    ::dup2(fds[1], STDOUT_FILENO);
    ::close(fds[1]);
    std::vector<char*> argv;
    argv.reserve(args.size() + 1);
    for (std::string& a : args) argv.push_back(a.data());
    argv.push_back(nullptr);
    ::execv(bin, argv.data());
    std::fprintf(stderr, "execv(%s): %s\n", bin, std::strerror(errno));
    ::_exit(127);
  }
  ::close(fds[1]);
  std::string line;
  char ch;
  while (::read(fds[0], &ch, 1) == 1 && ch != '\n') line.push_back(ch);
  ::close(fds[0]);
  ChildProc p;
  p.pid = pid;
  p.name = std::move(name);
  if (std::sscanf(line.c_str(), "%hu %hu", &p.port, &p.http_port) != 2) {
    std::fprintf(stderr, "%s did not print its ports (got '%s')\n", bin,
                 line.c_str());
    ::kill(pid, SIGKILL);
    std::exit(1);
  }
  return p;
}

/// Value of `series` (exact name or name{labels} prefix match) in a
/// Prometheus text exposition, summed over matching series; 0 if absent.
double prom_sum(const std::string& text, const std::string& series) {
  double total = 0;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.rfind(series, 0) == 0 &&
        (line[series.size()] == ' ' || line[series.size()] == '{')) {
      const std::size_t sp = line.rfind(' ');
      if (sp != std::string::npos) total += std::atof(line.c_str() + sp + 1);
    }
  }
  return total;
}

struct NetClientStats {
  std::uint64_t completed = 0;
  std::uint64_t retried = 0;  ///< retryable bounces absorbed
  std::uint64_t lost = 0;     ///< non-retried failures (must be 0)
  std::vector<double> latencies;
};

/// One client thread: `rounds` factorize+solve round trips cycling over
/// `mats` through the front at `port`.  Retries retryable wire errors and
/// service-level Rejected; re-factorizes on UnknownFactor (the owning
/// shard died and the factor with it).
void net_client_run(std::uint16_t port, const std::string& tenant,
                    const std::vector<std::shared_ptr<
                        const CscMatrix<real_t>>>& mats,
                    int rounds, NetClientStats& out) {
  net::BlockingClient c;
  c.connect("127.0.0.1", port);
  for (int i = 0; i < rounds; ++i) {
    const auto& a = mats[static_cast<std::size_t>(i) % mats.size()];
    const std::uint64_t digest = pattern_digest(*a);
    const std::vector<real_t> b(static_cast<std::size_t>(a->ncols()), 1.0);
    Timer t;
    bool done = false;
    std::uint64_t factor_id = 0;
    for (int attempt = 0; attempt < 200 && !done; ++attempt) {
      try {
        net::NetError err{};
        if (factor_id == 0) {
          const auto fr = c.factorize(tenant, *a, Factorization::LLT, {},
                                      &err);
          if (err != net::NetError{}) {
            if (!net::retryable(err)) {
              ++out.lost;
              break;
            }
            ++out.retried;
            std::this_thread::sleep_for(std::chrono::milliseconds(5));
            continue;
          }
          if (fr.status != 0) {  // Rejected under drain: also retryable
            ++out.retried;
            std::this_thread::sleep_for(std::chrono::milliseconds(5));
            continue;
          }
          factor_id = fr.factor_id;
        }
        const auto sr = c.solve(tenant, digest, factor_id, b, {}, &err);
        if (err == net::NetError::UnknownFactor) {
          factor_id = 0;  // owning shard is gone; re-factorize elsewhere
          ++out.retried;
          continue;
        }
        if (err != net::NetError{}) {
          if (!net::retryable(err)) {
            ++out.lost;
            break;
          }
          ++out.retried;
          std::this_thread::sleep_for(std::chrono::milliseconds(5));
          continue;
        }
        if (sr.status != 0) {
          ++out.retried;
          std::this_thread::sleep_for(std::chrono::milliseconds(5));
          continue;
        }
        ++out.completed;
        out.latencies.push_back(t.elapsed());
        done = true;
      } catch (const std::exception&) {
        // Connection to the front dropped: reconnect and retry.
        ++out.retried;
        try {
          c.connect("127.0.0.1", port);
        } catch (const std::exception&) {
          std::this_thread::sleep_for(std::chrono::milliseconds(20));
        }
      }
    }
    if (!done && out.lost == 0) ++out.lost;  // retries exhausted
  }
}

int run_net_bench(bool smoke, int shards_n, int clients, int rounds) {
  const int patterns = std::max(2 * shards_n, 4);
  rounds = ((rounds + patterns - 1) / patterns) * patterns;
  std::printf("--- net: %d shards + front, %d clients x %d round trips "
              "over %d patterns ---\n",
              shards_n, clients, rounds, patterns);

  // Spawn the fleet.  Every shard persists its factors so the phase-C
  // supervisor can SIGKILL and restart one warm.
  const std::string persist_root =
      "/tmp/spx_bench_net_" + std::to_string(static_cast<long>(::getpid()));
  std::vector<ChildProc> shards;
  std::vector<std::string> front_args;
  for (int s = 0; s < shards_n; ++s) {
    const std::string name = "s" + std::to_string(s);
    ChildProc p = spawn_with_ports(
        SPX_SHARD_BIN, name,
        {"--name", name, "--workers", "2", "--drain-timeout", "30",
         "--persist-dir", persist_root + "/" + name,
         "--persist-interval", "0"});
    front_args.push_back("--shard");
    front_args.push_back(name + ":127.0.0.1:" + std::to_string(p.port));
    shards.push_back(std::move(p));
  }
  front_args.push_back("--probe-interval");
  front_args.push_back("0.05");
  front_args.push_back("--max-backoff");
  front_args.push_back("0.1");
  front_args.push_back("--breaker-cooldown");
  front_args.push_back("0.2");
  ChildProc front =
      spawn_with_ports(SPX_FRONT_BIN, "front", std::move(front_args));

  auto kill_fleet = [&](int sig) {
    for (ChildProc& p : shards) {
      if (p.pid > 0) ::kill(p.pid, sig);
    }
    if (front.pid > 0) ::kill(front.pid, sig);
  };

  // Wait until the front has probed every shard up.
  bool ready = false;
  for (int i = 0; i < 100 && !ready; ++i) {
    int status = 0;
    try {
      net::http_get("127.0.0.1", front.http_port, "/readyz", &status);
    } catch (const std::exception&) {
    }
    ready = status == 200;
    if (!ready) std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  if (!ready) {
    std::fprintf(stderr, "front never became ready\n");
    kill_fleet(SIGKILL);
    return 1;
  }

  // Distinct patterns, several per shard on average.  `rounds` was
  // snapped to a multiple of the pattern count above so every pattern
  // sees the same traffic; under equal traffic the per-shard hit rate is
  // exactly the single-process rate (1 - 1/requests_per_pattern) whenever
  // affinity holds, making the >= gate below sharp instead of
  // luck-dependent.
  std::vector<std::shared_ptr<const CscMatrix<real_t>>> mats;
  const index_t base = smoke ? 10 : 24;
  for (int p = 0; p < patterns; ++p) {
    mats.push_back(std::make_shared<const CscMatrix<real_t>>(
        gen::grid2d_laplacian(base + p, base)));
  }

  // ---- phase A: steady state (cache-affinity measurement) --------------
  std::vector<NetClientStats> stats(static_cast<std::size_t>(clients));
  {
    std::vector<std::thread> threads;
    for (int c = 0; c < clients; ++c) {
      threads.emplace_back(net_client_run, front.port,
                           "net-" + std::to_string(c), std::cref(mats),
                           rounds, std::ref(stats[static_cast<std::size_t>(
                                       c)]));
    }
    for (auto& t : threads) t.join();
  }

  // Per-shard reuse rate, scraped over TCP.  With persistence on, exact
  // repeats are warm-served from the factor index before they ever reach
  // the service -- reuse that skips the numeric phase too, strictly
  // better than an analysis-cache hit -- so both count against the
  // single-process baseline.
  double worst_rate = 1.0;
  std::uint64_t total_requests = 0;
  for (const ChildProc& p : shards) {
    const std::string text =
        net::http_get("127.0.0.1", p.http_port, "/metrics");
    const double hits = prom_sum(text, "spx_analysis_cache_hits_total");
    const double misses = prom_sum(text, "spx_analysis_cache_misses_total");
    const double warm = prom_sum(text, "spx_shard_warm_hits_total");
    const double submitted = prom_sum(text, "spx_service_submitted_total");
    total_requests += static_cast<std::uint64_t>(submitted + warm);
    const double rate = hits + misses + warm > 0
                            ? (hits + warm) / (hits + misses + warm)
                            : 1.0;
    worst_rate = std::min(worst_rate, rate);
    std::printf("  shard %-4s reuse rate %5.1f%% (cache %g/%g, warm %g), "
                "%g requests\n",
                p.name.c_str(), 100.0 * rate, hits, hits + misses, warm,
                submitted + warm);
  }

  // Single-process baseline: the same request mix against one in-process
  // service.  Each pattern is analyzed once either way, so the sharded
  // per-shard rate must not be lower (affinity keeps repeats local).
  double baseline_rate;
  {
    ServiceOptions opts;
    opts.num_workers = 2;
    SolveService svc(opts);
    for (int c = 0; c < clients; ++c) {
      for (int i = 0; i < rounds; ++i) {
        const auto& a = mats[static_cast<std::size_t>(i) % mats.size()];
        (void)svc.factorize("base-" + std::to_string(c), a,
                            Factorization::LLT);
      }
    }
    const auto cs = svc.stats().cache;
    baseline_rate = cs.hits + cs.misses > 0
                        ? double(cs.hits) / double(cs.hits + cs.misses)
                        : 1.0;
  }
  std::printf("  single-process baseline hit rate %5.1f%%\n",
              100.0 * baseline_rate);

  // ---- phase B: SIGTERM one shard mid-traffic ---------------------------
  std::printf("  draining shard %s mid-run...\n", shards[0].name.c_str());
  std::vector<NetClientStats> kill_stats(
      static_cast<std::size_t>(clients));
  {
    std::vector<std::thread> threads;
    for (int c = 0; c < clients; ++c) {
      threads.emplace_back(net_client_run, front.port,
                           "kill-" + std::to_string(c), std::cref(mats),
                           rounds,
                           std::ref(kill_stats[static_cast<std::size_t>(
                               c)]));
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(smoke ? 30 : 200));
    ::kill(shards[0].pid, SIGTERM);  // graceful drain + exit
    for (auto& t : threads) t.join();
  }
  int shard0_status = -1;
  ::waitpid(shards[0].pid, &shard0_status, 0);
  const bool shard0_clean =
      WIFEXITED(shard0_status) && WEXITSTATUS(shard0_status) == 0;
  shards[0].pid = -1;

  // ---- phase C: SIGKILL the survivor, supervised warm restart ----------
  // No drain this time: -9 mid-traffic.  The supervisor restarts the
  // shard on its old port against its persist dir; the gates below
  // demand zero lost requests and a warm (snapshot-replayed) comeback.
  std::printf("  SIGKILL shard %s mid-run, supervised restart...\n",
              shards[1].name.c_str());
  bool snapshots_on_disk = false;
  for (int i = 0; i < 200 && !snapshots_on_disk; ++i) {
    try {
      const std::string text =
          net::http_get("127.0.0.1", shards[1].http_port, "/metrics");
      snapshots_on_disk =
          prom_sum(text, "spx_shard_snapshots_saved_total") >= 1.0;
    } catch (const std::exception&) {
    }
    if (!snapshots_on_disk) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  std::vector<NetClientStats> chaos_stats(static_cast<std::size_t>(clients));
  bool restarted_warm = false;
  {
    std::vector<std::thread> threads;
    for (int c = 0; c < clients; ++c) {
      threads.emplace_back(net_client_run, front.port,
                           "chaos-" + std::to_string(c), std::cref(mats),
                           rounds,
                           std::ref(chaos_stats[static_cast<std::size_t>(
                               c)]));
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(smoke ? 30 : 150));
    ::kill(shards[1].pid, SIGKILL);
    ::waitpid(shards[1].pid, nullptr, 0);
    const std::uint16_t old_port = shards[1].port;
    shards[1] = spawn_with_ports(
        SPX_SHARD_BIN, shards[1].name,
        {"--name", shards[1].name, "--workers", "2",
         "--port", std::to_string(old_port),
         "--persist-dir", persist_root + "/" + shards[1].name,
         "--persist-interval", "0"});
    for (auto& t : threads) t.join();
    try {
      int status = 0;
      const std::string ready = net::http_get(
          "127.0.0.1", shards[1].http_port, "/readyz", &status);
      restarted_warm = status == 200 &&
                       ready.find("warm=") != std::string::npos &&
                       ready.find("warm=0") == std::string::npos;
    } catch (const std::exception&) {
    }
  }

  // ---- report + gates ---------------------------------------------------
  NetClientStats total;
  for (const auto& bucket :
       {std::cref(stats), std::cref(kill_stats), std::cref(chaos_stats)}) {
    for (const NetClientStats& s : bucket.get()) {
      total.completed += s.completed;
      total.retried += s.retried;
      total.lost += s.lost;
      total.latencies.insert(total.latencies.end(), s.latencies.begin(),
                             s.latencies.end());
    }
  }
  std::sort(total.latencies.begin(), total.latencies.end());
  const auto pct = [&](double p) {
    return total.latencies.empty()
               ? 0.0
               : total.latencies[static_cast<std::size_t>(
                     p * double(total.latencies.size() - 1))];
  };
  std::printf("  completed %llu (of %llu offered), retried %llu, lost "
              "%llu; p50 %.2fms p99 %.2fms; shard %s exit %s\n",
              static_cast<unsigned long long>(total.completed),
              static_cast<unsigned long long>(3ull *
                                              std::uint64_t(clients) *
                                              std::uint64_t(rounds)),
              static_cast<unsigned long long>(total.retried),
              static_cast<unsigned long long>(total.lost),
              pct(0.5) * 1e3, pct(0.99) * 1e3, shards[0].name.c_str(),
              shard0_clean ? "clean" : "NOT CLEAN");

  kill_fleet(SIGTERM);
  for (ChildProc& p : shards) {
    if (p.pid > 0) ::waitpid(p.pid, nullptr, 0);
  }
  if (front.pid > 0) ::waitpid(front.pid, nullptr, 0);
  std::error_code ec;
  std::filesystem::remove_all(persist_root, ec);

  int rc = 0;
  if (total.lost != 0) {
    std::fprintf(stderr, "FAIL: %llu non-retried request failures\n",
                 static_cast<unsigned long long>(total.lost));
    rc = 1;
  }
  if (total.completed !=
      3ull * std::uint64_t(clients) * std::uint64_t(rounds)) {
    std::fprintf(stderr, "FAIL: not every offered request completed\n");
    rc = 1;
  }
  if (snapshots_on_disk && !restarted_warm) {
    std::fprintf(stderr,
                 "FAIL: SIGKILLed shard had snapshots but restarted cold\n");
    rc = 1;
  }
  if (!shard0_clean) {
    std::fprintf(stderr, "FAIL: drained shard did not exit cleanly\n");
    rc = 1;
  }
  if (worst_rate + 1e-9 < baseline_rate) {
    std::fprintf(stderr,
                 "FAIL: per-shard cache hit rate %.3f below "
                 "single-process %.3f (affinity broken)\n",
                 worst_rate, baseline_rate);
    rc = 1;
  }
  if (total_requests == 0) {
    std::fprintf(stderr, "FAIL: shards report zero submitted requests\n");
    rc = 1;
  }
  if (rc == 0) {
    std::printf("  OK: zero lost requests, per-shard hit rate >= "
                "single-process, graceful drain clean\n");
  }
  return rc;
}

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const bool smoke = cli.get_flag("smoke");
  const bool metrics = cli.get_flag("metrics");
  const bool net = cli.get_flag("net");
  const auto nx = static_cast<index_t>(cli.get_int("nx", smoke ? 24 : 56));
  const int workers = static_cast<int>(cli.get_int("workers", 4));
  const int requests =
      static_cast<int>(cli.get_int("requests", smoke ? 8 : 40));
  const int net_shards = static_cast<int>(cli.get_int("shards", 2));
  const int net_clients =
      static_cast<int>(cli.get_int("clients", smoke ? 3 : 8));
  const int net_rounds =
      static_cast<int>(cli.get_int("rounds", smoke ? 6 : 24));
  cli.check_unknown();

  if (net) {
    return run_net_bench(smoke, net_shards, net_clients, net_rounds);
  }
  if (metrics) {
    return run_metrics_gate(make_matrix(nx), workers, requests);
  }

  const auto a = make_matrix(nx);
  std::printf("service bench: %dx%d grid (n=%d), %d workers, "
              "%d requests/client%s\n\n",
              nx, nx, a->ncols(), workers, requests, smoke ? " [smoke]" : "");

  // ---- 1. analysis cache on vs off -------------------------------------
  std::printf("--- cache: repeated same-pattern factorize+solve ---\n");
  double thr_on = 0, thr_off = 0;
  for (const bool cache_on : {true, false}) {
    ServiceOptions opts;
    opts.num_workers = workers;
    opts.queue_capacity = 4096;
    opts.cache_bytes = cache_on ? (256ull << 20) : 0;
    SolveService svc(opts);
    // Warm up once so the cached run's first-request miss is off-clock.
    (void)svc.factorize("warmup", a, Factorization::LLT);
    const LoadStats st = run_clients(svc, a, workers, requests);
    (cache_on ? thr_on : thr_off) = st.throughput();
    const auto cs = svc.stats().cache;
    std::printf("  cache %-3s  %8.1f req/s  p50 %7.2fms  p99 %7.2fms  "
                "(hits %llu, misses %llu)\n",
                cache_on ? "on" : "off", st.throughput(),
                st.percentile(0.5) * 1e3, st.percentile(0.99) * 1e3,
                static_cast<unsigned long long>(cs.hits),
                static_cast<unsigned long long>(cs.misses));
  }
  std::printf("  speedup from analysis cache: %.2fx %s\n\n",
              thr_off > 0 ? thr_on / thr_off : 0.0,
              thr_on >= 2.0 * thr_off ? "(>= 2x: pattern reuse pays)"
                                      : "(below 2x on this host/size)");

  // ---- 2. offered-load sweep -------------------------------------------
  std::printf("--- load sweep: clients vs %d workers ---\n", workers);
  std::printf("  %7s %10s %10s %10s %9s\n", "clients", "req/s", "p50(ms)",
              "p99(ms)", "rejected");
  for (const int clients : {1, workers, 2 * workers}) {
    ServiceOptions opts;
    opts.num_workers = workers;
    opts.queue_capacity = 4096;
    SolveService svc(opts);
    (void)svc.factorize("warmup", a, Factorization::LLT);
    const LoadStats st = run_clients(svc, a, clients, requests);
    std::printf("  %7d %10.1f %10.2f %10.2f %9llu\n", clients,
                st.throughput(), st.percentile(0.5) * 1e3,
                st.percentile(0.99) * 1e3,
                static_cast<unsigned long long>(st.rejected));
  }

  // ---- 3. overload: bounded queue under 4x saturation ------------------
  // Per-tenant capacity 2 with every client on ONE tenant: at 4x more
  // concurrent clients than workers, most submissions must bounce as
  // Rejected immediately -- the queue never grows beyond its bound and
  // every ticket resolves.
  std::printf("\n--- overload: 4x saturation against capacity-2 queue ---\n");
  {
    ServiceOptions opts;
    opts.num_workers = workers;
    opts.queue_capacity = 2;
    SolveService svc(opts);
    const FactorizeResult fr = svc.factorize("shared", a, Factorization::LLT);
    if (!fr.ok()) {
      std::fprintf(stderr, "overload warmup failed: %s\n", fr.error.c_str());
      return 1;
    }
    const int flooders = 4 * workers;
    const std::vector<real_t> b(static_cast<std::size_t>(a->ncols()), 1.0);
    std::atomic<std::uint64_t> done{0}, bounced{0};
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(flooders));
    Timer wall;
    for (int c = 0; c < flooders; ++c) {
      threads.emplace_back([&] {
        for (int i = 0; i < requests; ++i) {
          const SolveResult sr = svc.solve("shared", fr.factor, b);
          if (sr.ok()) {
            done.fetch_add(1);
          } else if (sr.status == RequestStatus::Rejected) {
            bounced.fetch_add(1);
          }
        }
      });
    }
    for (auto& t : threads) t.join();
    const double wall_s = wall.elapsed();
    const auto total = static_cast<std::uint64_t>(flooders) *
                       static_cast<std::uint64_t>(requests);
    std::printf("  %llu requests from %d clients in %.2fs: %llu served, "
                "%llu rejected (queue bound held, no deadlock)\n",
                static_cast<unsigned long long>(total), flooders, wall_s,
                static_cast<unsigned long long>(done.load()),
                static_cast<unsigned long long>(bounced.load()));
    if (done.load() + bounced.load() != total) {
      std::fprintf(stderr, "lost requests: %llu != %llu\n",
                   static_cast<unsigned long long>(done.load() +
                                                   bounced.load()),
                   static_cast<unsigned long long>(total));
      return 1;
    }
  }
  // ---- 4. faults: injected task death absorbed by the retry loop ------
  // One-shot Throw faults (injector ordinals are monotonic, so attempt 2
  // of each request runs past the victim fault-free).  Requests go through
  // one at a time so the injector can be re-armed between them; the
  // comparison against an unfaulted pass isolates the retry latency tax.
  std::printf("\n--- faults: one injected task death per factorize ---\n");
  {
    FaultInjector fault;
    ServiceOptions opts;
    opts.num_workers = 1;
    opts.queue_capacity = 64;
    opts.cache_bytes = 256ull << 20;
    // Task faults fire in the threaded driver, not the sequential path.
    opts.solver.runtime = RuntimeKind::Native;
    opts.solver.num_threads = 2;
    opts.solver.instr.fault = &fault;
    opts.retry_backoff_s = 0.001;
    SolveService svc(opts);
    (void)svc.factorize("faulty", a, Factorization::LLT);  // warm the cache

    double clean_s = 0, faulted_s = 0;
    std::uint64_t absorbed = 0;
    const int rounds = smoke ? 6 : 20;
    for (const bool inject : {false, true}) {
      Timer wall;
      for (int i = 0; i < rounds; ++i) {
        if (inject) {
          fault.rearm(FaultPlan::nth_task(FaultAction::Throw,
                                          static_cast<std::uint64_t>(i) % 7));
        } else {
          fault.rearm(FaultPlan{});
        }
        const FactorizeResult fr =
            svc.factorize("faulty", a, Factorization::LLT);
        if (!fr.ok()) {
          std::fprintf(stderr, "faulted factorize did not recover: %s\n",
                       fr.error.c_str());
          return 1;
        }
        if (inject && fr.stats.attempts > 1) ++absorbed;
      }
      (inject ? faulted_s : clean_s) = wall.elapsed();
    }
    const auto st = svc.stats();
    std::printf("  %d clean rounds %.1fms, %d faulted rounds %.1fms "
                "(retry tax %.2fx)\n",
                rounds, clean_s * 1e3, rounds, faulted_s * 1e3,
                clean_s > 0 ? faulted_s / clean_s : 0.0);
    // errors[] counts terminal outcomes only; a fully absorbed fault shows
    // up in `retries`, not as a terminal injected-fault error.
    std::printf("  faults absorbed by retry: %llu/%d, service retries %llu, "
                "terminal injected-fault errors %llu, health '%s'\n",
                static_cast<unsigned long long>(absorbed), rounds,
                static_cast<unsigned long long>(st.retries),
                static_cast<unsigned long long>(
                    st.error_count(service::ErrorCode::InjectedFault)),
                st.health());
    if (absorbed == 0 || st.retries == 0) {
      std::fprintf(stderr, "no fault was ever injected/retried -- the "
                   "scenario is not exercising the retry path\n");
      return 1;
    }
  }

  // ---- 5. timestep: streaming refactorize + fp32 serving + 4:1 QoS ----
  std::printf("\n--- timestep: one pattern, fresh values every step ---\n");
  {
    const int steps = smoke ? 12 : 60;
    auto with_vals = [&](const std::vector<real_t>& vals) {
      return std::make_shared<const CscMatrix<real_t>>(
          a->nrows(), a->ncols(),
          std::vector<size_type>(a->colptr().begin(), a->colptr().end()),
          std::vector<index_t>(a->rowind().begin(), a->rowind().end()),
          std::vector<real_t>(vals));
    };

    // (a) per-step cost: full analyze+factorize vs numeric-only
    // refactorize on the same drifting operator.
    double full_s = 0, refactor_s = 0;
    {
      ServiceOptions opts;
      opts.num_workers = 1;
      opts.cache_bytes = 0;  // the full path re-analyzes every step
      SolveService svc(opts);
      std::vector<real_t> vals(a->values().begin(), a->values().end());
      Timer wall;
      for (int s = 0; s < steps; ++s) {
        for (auto& v : vals) v *= 1.0001;  // SPD-preserving drift
        const FactorizeResult fr =
            svc.factorize("full", with_vals(vals), Factorization::LLT);
        if (!fr.ok()) {
          std::fprintf(stderr, "full step failed: %s\n", fr.error.c_str());
          return 1;
        }
      }
      full_s = wall.elapsed();
    }
    {
      ServiceOptions opts;
      opts.num_workers = 1;
      SolveService svc(opts);
      const FactorizeResult first =
          svc.factorize("stream", a, Factorization::LLT);
      if (!first.ok()) {
        std::fprintf(stderr, "stream warmup failed: %s\n",
                     first.error.c_str());
        return 1;
      }
      std::vector<real_t> vals(a->values().begin(), a->values().end());
      Timer wall;
      for (int s = 0; s < steps; ++s) {
        for (auto& v : vals) v *= 1.0001;
        const FactorizeResult fr = svc.refactorize(
            "stream", first.factor, std::vector<real_t>(vals));
        if (!fr.ok()) {
          std::fprintf(stderr, "refactorize step failed: %s\n",
                       fr.error.c_str());
          return 1;
        }
      }
      refactor_s = wall.elapsed();
    }
    const double speedup = refactor_s > 0 ? full_s / refactor_s : 0.0;
    std::printf("  %d steps: full %.1fms, refactorize %.1fms -> %.2fx\n",
                steps, full_s * 1e3, refactor_s * 1e3, speedup);
    if (speedup < 2.0) {
      std::fprintf(stderr, "FAIL: refactorize below the 2x gate over full "
                   "analyze+factorize\n");
      return 1;
    }

    // (b) fp32 factorization + iterative refinement serves at fp64
    // accuracy; an operator that overflows float range trips the quality
    // gate and falls back to fp64 transparently.
    {
      ServiceOptions opts;
      opts.num_workers = 1;
      opts.precision = service::PrecisionPolicy::Fp32Refine;
      SolveService svc(opts);
      const FactorizeResult fr = svc.factorize("mp", a, Factorization::LLT);
      if (!fr.ok() || !fr.stats.fp32 ||
          fr.stats.backward_error > opts.mixed_tolerance) {
        std::fprintf(stderr,
                     "FAIL: fp32_refine did not serve at fp64 accuracy "
                     "(fp32=%d backward=%.2e)\n",
                     int(fr.stats.fp32), fr.stats.backward_error);
        return 1;
      }
      std::vector<real_t> ones(static_cast<std::size_t>(a->ncols()), 1.0);
      std::vector<real_t> b(ones.size());
      a->multiply(ones, b);
      const SolveResult sr = svc.solve("mp", fr.factor, b);
      double err = 0;
      for (const real_t v : sr.x) err = std::max(err, std::abs(v - 1.0));
      std::printf("  fp32+refine: backward error %.2e, %d refinement "
                  "sweeps, solve err %.2e (half the factor bytes)\n",
                  fr.stats.backward_error, fr.stats.refine_iterations, err);
      if (!sr.ok() || err > 1e-8) {
        std::fprintf(stderr, "FAIL: fp32-served solve inaccurate\n");
        return 1;
      }
      std::vector<real_t> huge(a->values().begin(), a->values().end());
      for (auto& v : huge) v *= 1e200;  // overflows float: gate must trip
      const FactorizeResult fb =
          svc.factorize("mp", with_vals(huge), Factorization::LLT);
      std::printf("  quality gate: fallback=%d fp32=%d on a float-range "
                  "overflow\n",
                  int(fb.stats.precision_fallback), int(fb.stats.fp32));
      if (!fb.ok() || !fb.stats.precision_fallback || fb.stats.fp32) {
        std::fprintf(stderr, "FAIL: fp64 fallback was not exercised\n");
        return 1;
      }
    }

    // (c) weighted QoS: gold (weight 4) and bronze (weight 1) flood one
    // worker; the completion sequence during saturation must split 4:1.
    {
      ServiceOptions opts;
      opts.num_workers = 1;
      opts.queue_capacity = 4096;
      opts.max_batch = 1;  // one job per pop: completion order IS the schedule
      opts.tenants["gold"].weight = 4.0;
      opts.tenants["bronze"].weight = 1.0;
      SolveService svc(opts);
      const FactorizeResult fg =
          svc.factorize("gold", a, Factorization::LLT);
      const FactorizeResult fb =
          svc.factorize("bronze", a, Factorization::LLT);
      if (!fg.ok() || !fb.ok()) {
        std::fprintf(stderr, "qos warmup failed\n");
        return 1;
      }
      const int per_tenant = smoke ? 200 : 600;
      const std::vector<real_t> b(static_cast<std::size_t>(a->ncols()), 1.0);
      std::vector<service::Ticket<SolveResult>> gold, bronze;
      gold.reserve(static_cast<std::size_t>(per_tenant));
      bronze.reserve(static_cast<std::size_t>(per_tenant));
      for (int i = 0; i < per_tenant; ++i) {
        gold.push_back(svc.submit_solve(
            service::RequestOptions{.tenant = "gold"}, fg.factor, b));
        bronze.push_back(svc.submit_solve(
            service::RequestOptions{.tenant = "bronze"}, fb.factor, b));
      }
      // (tenant, completion ordinal) pairs, schedule order.
      std::vector<std::pair<std::uint64_t, bool>> seq;  // (seq, is_gold)
      for (auto& t : gold) {
        const SolveResult r = t.get();
        if (r.ok()) seq.emplace_back(r.stats.completion_seq, true);
      }
      for (auto& t : bronze) {
        const SolveResult r = t.get();
        if (r.ok()) seq.emplace_back(r.stats.completion_seq, false);
      }
      std::sort(seq.begin(), seq.end());
      // Saturation holds until gold drains at pop ~1.25*per_tenant; skip
      // the submission-time transient and measure the middle window.
      const std::size_t lo = static_cast<std::size_t>(per_tenant) / 5;
      const std::size_t hi = static_cast<std::size_t>(per_tenant);
      std::size_t gold_n = 0, window = 0;
      for (std::size_t i = lo; i < hi && i < seq.size(); ++i) {
        gold_n += seq[i].second ? 1u : 0u;
        ++window;
      }
      const double share = window > 0 ? double(gold_n) / double(window) : 0;
      const auto tstats = svc.stats().tenants;
      std::printf("  qos: gold share %.1f%% over %zu saturated pops "
                  "(target 80%%); served gold=%llu bronze=%llu\n",
                  100.0 * share, window,
                  static_cast<unsigned long long>(
                      tstats.at("gold").completed),
                  static_cast<unsigned long long>(
                      tstats.at("bronze").completed));
      if (share < 0.72 || share > 0.88) {
        std::fprintf(stderr, "FAIL: 4:1 weighted shares off by more than "
                     "10%% under saturation\n");
        return 1;
      }
    }
  }
  return 0;
}
