// Reproduction of Table I: the matrix test set.
//
// Prints the surrogate matrices side by side with the paper's values.
// Absolute sizes are ~1/100 of the paper's by default (see DESIGN.md);
// what must match is the mix of precisions/factorizations and the flop
// *ranking* (afshell10 smallest ... Serena largest).
#include "bench_common.hpp"

using namespace spx;
using namespace spx::bench;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const double scale = cli.get_double("scale", 1.0);
  const std::string only = cli.get("matrix", "");
  cli.check_unknown();

  auto matrices = load_matrices(scale, only);

  std::printf("Table I: matrix description (surrogates at scale %.2f)\n",
              scale);
  print_rule(118);
  std::printf("%-10s %-4s %-6s | %9s %9s %10s %9s | %9s %9s %9s %9s\n",
              "Matrix", "Prec", "Method", "Size", "nnzA", "nnzL",
              "GFlop", "paperSize", "p.nnzA", "p.nnzL", "p.TFlop");
  print_rule(118);
  double prev_gflop = 0.0;
  bool ranking_ok = true;
  for (const BenchMatrix& m : matrices) {
    std::printf(
        "%-10s %-4s %-6s | %9lld %9lld %10lld %9.2f | %9.1e %9.1e %9.1e "
        "%9.2f\n",
        m.spec.name.c_str(), to_string(m.spec.prec),
        to_string(m.spec.method), (long long)m.n, (long long)m.nnza,
        (long long)m.analysis.structure.nnz_factor, m.gflop,
        m.spec.paper_size, m.spec.paper_nnza, m.spec.paper_nnzl,
        m.spec.paper_tflop);
    if (m.gflop < prev_gflop * 0.8) ranking_ok = false;  // allow near-ties
    prev_gflop = m.gflop;
  }
  print_rule(118);
  std::printf("flop ranking follows the paper's order: %s\n",
              ranking_ok ? "yes" : "NO (check surrogate dimensions)");
  return ranking_ok ? 0 : 1;
}
