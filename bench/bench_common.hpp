// Shared plumbing for the paper-reproduction benches: builds the nine
// surrogate matrices, runs the analysis phase once per matrix, and
// provides the table-printing helpers every bench uses.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/timer.hpp"
#include "core/analysis.hpp"
#include "core/sim_runner.hpp"
#include "mat/surrogates.hpp"

namespace spx::bench {

struct BenchMatrix {
  SurrogateSpec spec;
  Analysis analysis;
  size_type n = 0;
  size_type nnza = 0;
  double gflop = 0.0;  ///< factorization flops of the surrogate, in GFlop

  bool complex_arith() const { return spec.prec == Precision::Z; }
};

/// Builds + analyzes the surrogates (optionally filtered by name).  The
/// analysis uses the paper's settings: nested dissection, 12% amalgamation
/// fill, 128-wide panel splitting.
inline std::vector<BenchMatrix> load_matrices(double scale,
                                              const std::string& only = "") {
  std::vector<BenchMatrix> out;
  AnalysisOptions opts;
  opts.symbolic.amalgamation.fill_ratio = 0.12;  // paper §V
  opts.symbolic.max_panel_width = 128;
  for (const SurrogateSpec& spec : paper_surrogates()) {
    if (!only.empty() && spec.name != only) continue;
    BenchMatrix m;
    m.spec = spec;
    Timer t;
    if (spec.prec == Precision::D) {
      const auto a = build_surrogate_d(spec, scale);
      m.analysis = analyze(a, opts);
      m.n = a.ncols();
      m.nnza = a.nnz();
    } else {
      const auto a = build_surrogate_z(spec, scale);
      m.analysis = analyze(a, opts);
      m.n = a.ncols();
      m.nnza = a.nnz();
    }
    m.gflop = m.analysis.total_flops(spec.method) / 1e9;
    std::fprintf(stderr, "[bench] %-10s analyzed in %5.1fs (%.1f GFlop)\n",
                 spec.name.c_str(), t.elapsed(), m.gflop);
    out.push_back(std::move(m));
  }
  SPX_CHECK_ARG(!out.empty(), "no matrix matched --matrix " + only);
  return out;
}

/// Label "name(P, METHOD)" as the paper's figures use.
inline std::string label(const SurrogateSpec& s) {
  return s.name + "(" + to_string(s.prec) + "," + to_string(s.method) + ")";
}

inline void print_rule(int width) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

}  // namespace spx::bench
