// Performance-model calibration driver (docs/PERF_MODELS.md).
//
// Runs the microbenchmark grid against this host's kernels, persists the
// fitted model as versioned JSON, reloads it (exercising the round-trip
// the solver performs), then validates it twice:
//   1. holdout: off-grid kernel shapes measured with the calibration
//      harness and compared against the fitted predictions -- the
//      acceptance bar is a median |predicted - actual| / actual within
//      25% for the panel (factor + TRSM) and GEMM kernel classes;
//   2. end-to-end: real factorizations of the paper's surrogate matrices
//      report per-task-class medians, first from the fitted tables alone,
//      then again after online refinement has populated the history
//      layer.  These fold in scheduler/interference noise and are
//      reported as supplementary data (no gate).
//
//   bench/bench_calibration --out models/myhost.json --scale 0.15
//   bench/bench_calibration --quick        # CI smoke (coarse grid)
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/solver.hpp"
#include "perfmodel/calibrate.hpp"
#include "perfmodel/calibrated_costs.hpp"

using namespace spx;
using namespace spx::bench;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const std::string out = cli.get("out", "perf_model.json");
  const bool quick = cli.get_flag("quick");
  const double scale = cli.get_double("scale", quick ? 0.08 : 0.15);
  const int threads = static_cast<int>(cli.get_int("threads", 0));
  const std::string host = cli.get("host", "host");
  const std::string only = cli.get("matrix", "");
  cli.check_unknown();

  // 1. Calibrate and persist.
  perfmodel::CalibrationOptions copts;
  copts.quick = quick;
  copts.host = host;
  Timer cal_timer;
  perfmodel::PerfModel model = perfmodel::calibrate_kernels(copts);
  std::size_t points = 0;
  for (int c = 0; c < perfmodel::kNumKernelClasses; ++c) {
    for (const ResourceKind kind :
         {ResourceKind::Cpu, ResourceKind::GpuStream}) {
      const perfmodel::KernelTable* t =
          model.table(static_cast<perfmodel::KernelClass>(c), kind);
      if (t != nullptr) points += t->points().size();
    }
  }
  std::printf("calibrated %zu grid points in %.1fs; saving to %s\n", points,
              cal_timer.elapsed(), out.c_str());
  model.save(out);

  // 2. Reload, as the solver would.
  std::string error;
  const auto reloaded = perfmodel::PerfModel::load(out, &error);
  if (!reloaded) {
    std::fprintf(stderr, "reload failed: %s\n", error.c_str());
    return 1;
  }
  std::printf("reload OK (host '%s')\n\n", reloaded->host().c_str());

  // 3. Holdout validation at kernel granularity: measure shapes the grid
  // never saw with the same harness and compare against the fitted
  // predictions.  This isolates the tables' interpolation quality -- the
  // acceptance bar -- from scheduler/driver noise, which the task-level
  // section below reports separately.
  struct Holdout {
    perfmodel::KernelClass cls;
    perfmodel::KernelShape shape;
  };
  const std::vector<Holdout> holdouts = {
      {perfmodel::KernelClass::Potrf, {24, 24, 24}},
      {perfmodel::KernelClass::Potrf, {40, 40, 40}},
      {perfmodel::KernelClass::Potrf, {80, 80, 80}},
      {perfmodel::KernelClass::Ldlt, {48, 48, 48}},
      {perfmodel::KernelClass::Ldlt, {112, 112, 112}},
      {perfmodel::KernelClass::Getrf, {24, 24, 24}},
      {perfmodel::KernelClass::Getrf, {112, 112, 112}},
      {perfmodel::KernelClass::TrsmPanel, {96, 24, 24}},
      {perfmodel::KernelClass::TrsmPanel, {160, 40, 40}},
      {perfmodel::KernelClass::TrsmPanel, {320, 48, 48}},
      {perfmodel::KernelClass::TrsmPanel, {512, 80, 80}},
      {perfmodel::KernelClass::TrsmPanel, {900, 96, 96}},
      {perfmodel::KernelClass::GemmNt, {48, 24, 24}},
      {perfmodel::KernelClass::GemmNt, {96, 48, 32}},
      {perfmodel::KernelClass::GemmNt, {160, 80, 48}},
      {perfmodel::KernelClass::GemmNt, {256, 128, 64}},
      {perfmodel::KernelClass::GemmNt, {512, 24, 48}},
      {perfmodel::KernelClass::GemmNt, {700, 12, 96}},
      {perfmodel::KernelClass::GemmNt, {320, 160, 80}},
      {perfmodel::KernelClass::GemmNtGapped, {160, 80, 48}},
      {perfmodel::KernelClass::GemmNtGapped, {256, 128, 64}},
      {perfmodel::KernelClass::GemmNtGapped, {700, 12, 96}},
      {perfmodel::KernelClass::Scatter, {128, 48, 0}},
      {perfmodel::KernelClass::Scatter, {640, 96, 0}},
  };
  std::printf("holdout (off-grid shapes, kernel granularity):\n");
  std::printf("%-14s %5s %5s %5s | %11s %11s %7s\n", "kernel", "m", "n",
              "k", "measured", "predicted", "err");
  print_rule(70);
  std::vector<double> panel_err, gemm_err;
  for (const Holdout& h : holdouts) {
    const perfmodel::CalPoint mp = perfmodel::measure_point(h.cls, h.shape,
                                                            copts);
    const double actual = mp.work / mp.rate;
    double predicted = 0.0;
    if (!model.kernel_seconds(h.cls, ResourceKind::Cpu, h.shape,
                              &predicted)) {
      continue;
    }
    const double err = std::abs(predicted - actual) / actual;
    switch (h.cls) {
      case perfmodel::KernelClass::GemmNt:
      case perfmodel::KernelClass::GemmNtGapped:
        gemm_err.push_back(err);
        break;
      case perfmodel::KernelClass::Scatter:
        break;  // reported but not gating: tiny share of task time
      default:
        panel_err.push_back(err);
    }
    std::printf("%-14s %5.0f %5.0f %5.0f | %9.2fus %9.2fus %6.1f%%\n",
                perfmodel::to_string(h.cls), h.shape.m, h.shape.n,
                h.shape.k, 1e6 * actual, 1e6 * predicted, 100.0 * err);
  }
  print_rule(70);
  // The acceptance metric: per-class holdout medians for the panel
  // (factor + TRSM) and GEMM kernels, free of scheduler interference.
  const double hold_panel = ModelErrorStats::median(panel_err);
  const double hold_gemm = ModelErrorStats::median(gemm_err);
  const bool hold_ok = hold_panel <= 0.25 && hold_gemm <= 0.25;
  std::printf("holdout median |err|: panel-kernels %.1f%%, gemm %.1f%% "
              "%s\n\n",
              100.0 * hold_panel, 100.0 * hold_gemm,
              hold_ok ? "(within the 25%% target)"
                      : "(ABOVE the 25%% target)");

  // 4. Validate against real factorizations.  Pass 1 predicts from the
  // fitted kernel tables alone; pass 2 re-runs after online refinement has
  // filled the history layer, which should only tighten the error.
  std::printf("%-22s %-5s pass | %9s %7s %16s %16s\n", "matrix", "kind",
              "tasks", "cover", "panel(|e|/bias)", "update(|e|/bias)");
  print_rule(88);
  std::vector<double> pass1_panel, pass1_update;
  for (const SurrogateSpec& spec : paper_surrogates()) {
    if (spec.prec != Precision::D) continue;
    if (!only.empty() && spec.name != only) continue;
    const auto a = build_surrogate_d(spec, scale);
    SolverOptions sopts;
    sopts.runtime = RuntimeKind::Starpu;  // dmda consumes the model
    sopts.num_threads = threads;
    sopts.perf_model_file = out;
    sopts.analysis.symbolic.amalgamation.fill_ratio = 0.12;
    sopts.analysis.symbolic.max_panel_width = 128;
    Solver<double> solver(sopts);
    solver.analyze(a);
    for (int pass = 1; pass <= 2; ++pass) {
      solver.factorize(a, spec.method);
      const RunStats& st = solver.last_factorization_stats();
      const ModelErrorStats& err = st.model_error;
      TaskTable table(solver.analysis().structure, spec.method);
      perfmodel::CalibratedCosts costs(table, *solver.perf_model());
      std::printf(
          "%-22s %-5s  %d   | %9d %6.0f%% %7.1f%%/%+5.0f%% %7.1f%%/%+5.0f%%\n",
          label(spec).c_str(), to_string(spec.method), pass,
          st.tasks_cpu + st.tasks_gpu, 100.0 * costs.coverage(),
          100.0 * err.median_panel(), 100.0 * err.bias_panel(),
          100.0 * err.median_update(), 100.0 * err.bias_update());
      if (pass == 1) {
        pass1_panel.insert(pass1_panel.end(), err.panel_rel.begin(),
                           err.panel_rel.end());
        pass1_update.insert(pass1_update.end(), err.update_rel.begin(),
                            err.update_rel.end());
      }
    }
  }
  print_rule(88);
  // Supplementary end-to-end numbers: these fold in scheduler noise and
  // worker interference on top of model quality, so they do not gate.
  const double task_panel = ModelErrorStats::median_abs(pass1_panel);
  const double task_update = ModelErrorStats::median_abs(pass1_update);
  std::printf("pass-1 (tables only) task-level median |err|: panel %.1f%%, "
              "update %.1f%%\n",
              100.0 * task_panel, 100.0 * task_update);
  return hold_ok ? 0 : 2;
}
