// Distributed fan-in study (the paper's future work, §VI).
//
// Strong scaling of the factorization over 1..8 simulated cluster nodes
// (each a 12-core Mirage-class node), comparing the fan-in communication
// scheme (aggregate local contributions, one message per (node, target
// panel)) against eager fan-out (one message per remote update).  The
// paper's prediction -- "by locally accumulating the updates until the
// last updates to the supernode are available, we trade bandwidth for
// latency" -- shows up as: far fewer messages, slightly more bytes per
// message, and better scaling once the network saturates.
#include "bench_common.hpp"
#include "dist/fanin_sim.hpp"
#include "sim/cost_model.hpp"

using namespace spx;
using namespace spx::bench;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const double scale = cli.get_double("scale", 1.0);
  const std::string only = cli.get("matrix", "");
  cli.check_unknown();

  std::vector<BenchMatrix> matrices;
  for (const char* name : {"Flan", "Serena"}) {
    if (!only.empty() && only != name) continue;
    auto m = load_matrices(scale, name);
    matrices.push_back(std::move(m.front()));
  }
  SPX_CHECK_ARG(!matrices.empty(), "no matrix selected");

  std::printf("Distributed fan-in vs fan-out (simulated cluster of 12-core "
              "nodes)\n");
  print_rule(108);
  std::printf("%-14s %5s | %9s %9s %8s %9s | %9s %9s %8s %9s\n", "matrix",
              "nodes", "fanin GF", "msgs", "GB", "nic%", "fanout GF",
              "msgs", "GB", "nic%");
  print_rule(108);

  for (const BenchMatrix& m : matrices) {
    sim::CostModel::Options mopts;
    mopts.complex_arith = m.complex_arith();
    mopts.task_overhead = 2e-6;
    sim::CostModel model(sim::mirage(), m.analysis.structure, m.spec.method,
                         mopts);
    for (const index_t nodes : {1, 2, 4, 8}) {
      dist::ClusterSpec cluster;
      cluster.num_nodes = nodes;
      const auto fi = dist::simulate_distributed(
          m.analysis.structure, m.spec.method, model, cluster,
          dist::CommMode::FanIn);
      const auto fo = dist::simulate_distributed(
          m.analysis.structure, m.spec.method, model, cluster,
          dist::CommMode::FanOut);
      std::printf(
          "%-14s %5d | %9.1f %9lld %8.2f %8.1f%% | %9.1f %9lld %8.2f "
          "%8.1f%%\n",
          m.spec.name.c_str(), nodes, fi.gflops,
          static_cast<long long>(fi.messages), fi.bytes_sent / 1e9,
          100.0 * fi.comm_busy_max, fo.gflops,
          static_cast<long long>(fo.messages), fo.bytes_sent / 1e9,
          100.0 * fo.comm_busy_max);
    }
    print_rule(108);
  }
  std::printf("fan-in sends one aggregated message per (node, target); "
              "fan-out one per remote update.\n");
  return 0;
}
