// Reproduction of Figure 2: CPU scaling study.
//
// GFlop/s of the factorization step on the nine-matrix set with the three
// schedulers (native PASTIX, StarPU-like, PaRSEC-like), from 1 to 12
// cores of the simulated Mirage node.  Expected shape (paper §V-A):
//   * the three runtimes are comparable on a shared-memory machine;
//   * PaRSEC >= StarPU as cores increase (cache-reuse policy);
//   * native PASTIX wins on the LDLT matrices (pmlDF, Serena) thanks to
//     its prescaled D*L^T update kernel;
//   * Z-precision matrices show lower GFlop/s at equal hardware.
#include "bench_common.hpp"

using namespace spx;
using namespace spx::bench;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const double scale = cli.get_double("scale", 1.0);
  const std::string only = cli.get("matrix", "");
  cli.check_unknown();

  const auto matrices = load_matrices(scale, only);
  const int core_counts[] = {1, 3, 6, 9, 12};
  const char* scheds[] = {"native", "starpu", "parsec"};

  std::printf(
      "Figure 2: GFlop/s of the factorization step vs cores "
      "(simulated Mirage node)\n");
  print_rule(96);
  std::printf("%-22s %-8s", "matrix", "sched");
  for (const int c : core_counts) std::printf(" %8dc", c);
  std::printf("  %8s\n", "par.eff");
  print_rule(96);

  for (const BenchMatrix& m : matrices) {
    for (const char* sched : scheds) {
      std::printf("%-22s %-8s", label(m.spec).c_str(), sched);
      double first = 0.0, last = 0.0;
      for (const int c : core_counts) {
        SimRunConfig cfg;
        cfg.scheduler = sched;
        cfg.cores = c;
        cfg.complex_arith = m.complex_arith();
        const RunStats st = simulate_run(m.analysis, m.spec.method, cfg);
        std::printf(" %9.2f", st.gflops);
        if (c == core_counts[0]) first = st.gflops;
        last = st.gflops;
      }
      // Parallel efficiency at 12 cores relative to 1 core.
      std::printf("  %7.1f%%\n", 100.0 * last / (12.0 * first));
    }
    print_rule(96);
  }
  return 0;
}
