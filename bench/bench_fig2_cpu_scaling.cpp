// Reproduction of Figure 2: CPU scaling study.
//
// GFlop/s of the factorization step on the nine-matrix set with the three
// schedulers (native PASTIX, StarPU-like, PaRSEC-like), from 1 to 12
// cores of the simulated Mirage node.  Expected shape (paper §V-A):
//   * the three runtimes are comparable on a shared-memory machine;
//   * PaRSEC >= StarPU as cores increase (cache-reuse policy);
//   * native PASTIX wins on the LDLT matrices (pmlDF, Serena) thanks to
//     its prescaled D*L^T update kernel;
//   * Z-precision matrices show lower GFlop/s at equal hardware.
//
// A second section measures *real* (threaded) execution on a wide,
// small-task surrogate and reports the contention counters from
// RunStats::contention -- each sharded scheduler against the same
// scheduler behind a single global lock (SerializedScheduler), which is
// the pre-sharding baseline.  Skip with --no-real; --threads overrides
// the worker count and --reps the averaging (single runs are noisy when
// workers oversubscribe the hardware cores).
#include <algorithm>
#include <memory>
#include <optional>
#include <thread>

#include "bench_common.hpp"
#include "perfmodel/perf_model.hpp"
#include "core/factor_data.hpp"
#include "graph/ordering.hpp"
#include "mat/generators.hpp"
#include "runtime/dag_stats.hpp"
#include "runtime/flop_costs.hpp"
#include "runtime/native_scheduler.hpp"
#include "runtime/parsec_scheduler.hpp"
#include "runtime/real_driver.hpp"
#include "runtime/serialized_scheduler.hpp"
#include "runtime/starpu_scheduler.hpp"

using namespace spx;
using namespace spx::bench;

namespace {

/// Rep-averaged metrics for one scheduler configuration; single runs are
/// preemption-noise-dominated when workers outnumber hardware cores.
struct ContentionRow {
  double makespan = 0.0;
  double gflops = 0.0;
  double lock_share = 0.0;
  double idle_share = 0.0;
  double steals = 0.0;
  double depth = 0.0;
  int reps = 0;

  void add(const RunStats& st, double gflop) {
    const auto& c = st.contention;
    makespan += st.makespan;
    gflops += gflop / st.makespan;
    lock_share += 100.0 * c.lock_wait_share(st.makespan);
    idle_share += 100.0 * c.idle_share(st.makespan);
    steals += static_cast<double>(c.total_steals());
    depth += c.avg_queue_depth();
    ++reps;
  }
};

void print_contention_row(const char* name, const ContentionRow& r) {
  const double n = std::max(1, r.reps);
  std::printf("%-18s %9.3f %8.2f %9.2f%% %8.2f%% %8.0f %10.1f\n", name,
              r.makespan / n, r.gflops / n, r.lock_share / n,
              r.idle_share / n, r.steals / n, r.depth / n);
}

/// One threaded factorization; rebuilds the factor values each run so
/// every configuration does identical numerical work.
RunStats real_run(Scheduler& sched, const Machine& machine,
                  const CscMatrix<real_t>& a, const Analysis& an) {
  FactorData<real_t> f(an.structure, Factorization::LLT);
  f.initialize(permute_symmetric(a, an.perm));
  RealDriverOptions opts;
  opts.fused_ldlt = false;
  return execute_real(sched, machine, f, opts);
}

void real_contention_section(int threads, int reps) {
  // Same surrogate as the RuntimeStress tests: narrow panels make the DAG
  // wide and the tasks small, the regime where scheduler-lock contention
  // dominates (ISSUE: the 200us polling loop used to hide this).
  const auto a = gen::grid3d_laplacian(12, 12, 12);
  AnalysisOptions aopts;
  aopts.symbolic.max_panel_width = 4;
  const Analysis an = analyze(a, aopts);
  TaskTable table(an.structure, Factorization::LLT);
  FlopCosts costs(table);
  const double gflop = an.total_flops(Factorization::LLT) / 1e9;
  const DagStats dag =
      dag_stats(an.structure, costs, Decomposition::TwoLevel);
  const Machine machine(threads);

  std::printf(
      "\nReal-execution contention: 12^3 Laplacian, 4-wide panels "
      "(%d panels, %d tasks, peak DAG width %d), %d threads, "
      "%d-rep averages\n",
      static_cast<int>(an.structure.num_panels()),
      static_cast<int>(dag.num_tasks), static_cast<int>(dag.peak_width),
      threads, reps);
  std::printf(
      "each scheduler sharded (as shipped) vs the same scheduler behind "
      "one global lock\n");
  print_rule(78);
  std::printf("%-18s %9s %8s %10s %9s %8s %10s\n", "sched", "mksp(s)",
              "GFlop/s", "lock-wait", "idle", "steals", "avg-depth");
  print_rule(78);

  const char* names[] = {"native", "starpu-dmda", "starpu-eager",
                         "parsec"};
  for (const char* name : names) {
    auto make = [&]() -> std::unique_ptr<Scheduler> {
      const std::string n = name;
      if (n == "native") {
        return std::make_unique<NativeScheduler>(table, machine, costs);
      }
      if (n == "starpu-eager") {
        StarpuOptions opts;
        opts.policy = StarpuOptions::Policy::Eager;
        return std::make_unique<StarpuScheduler>(table, machine, costs,
                                                 opts);
      }
      if (n == "starpu-dmda") {
        return std::make_unique<StarpuScheduler>(table, machine, costs);
      }
      return std::make_unique<ParsecScheduler>(table, machine, costs);
    };
    ContentionRow sharded, locked;
    for (int rep = 0; rep < reps; ++rep) {
      {
        auto sched = make();
        sharded.add(real_run(*sched, machine, a, an), gflop);
      }
      {
        auto inner = make();
        SerializedScheduler sched(*inner, machine.num_resources());
        locked.add(real_run(sched, machine, a, an), gflop);
      }
    }
    print_contention_row(name, sharded);
    const std::string label = std::string(name) + "+lock";
    print_contention_row(label.c_str(), locked);
  }
  print_rule(78);
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const double scale = cli.get_double("scale", 1.0);
  const std::string only = cli.get("matrix", "");
  const bool no_real = cli.get_flag("no-real");
  const int threads = static_cast<int>(cli.get_int(
      "threads",
      std::max(4, static_cast<int>(std::thread::hardware_concurrency()))));
  const int reps = static_cast<int>(cli.get_int("reps", 3));
  // Calibrated model: grounds the simulated CPU task times in measured
  // rates (the scaling *shape* is scheduler-driven either way).
  const std::string perf_model_file = cli.get("perf-model", "");
  cli.check_unknown();

  std::optional<perfmodel::PerfModel> measured;
  if (!perf_model_file.empty()) {
    std::string err;
    measured = perfmodel::PerfModel::load(perf_model_file, &err);
    if (!measured) {
      std::fprintf(stderr, "perf model skipped: %s\n", err.c_str());
    }
  }

  const auto matrices = load_matrices(scale, only);
  const int core_counts[] = {1, 3, 6, 9, 12};
  const char* scheds[] = {"native", "starpu", "parsec"};

  std::printf(
      "Figure 2: GFlop/s of the factorization step vs cores "
      "(simulated Mirage node)\n");
  print_rule(96);
  std::printf("%-22s %-8s", "matrix", "sched");
  for (const int c : core_counts) std::printf(" %8dc", c);
  std::printf("  %8s\n", "par.eff");
  print_rule(96);

  for (const BenchMatrix& m : matrices) {
    for (const char* sched : scheds) {
      std::printf("%-22s %-8s", label(m.spec).c_str(), sched);
      double first = 0.0, last = 0.0;
      for (const int c : core_counts) {
        SimRunConfig cfg;
        cfg.scheduler = sched;
        cfg.cores = c;
        cfg.complex_arith = m.complex_arith();
        if (measured && !m.complex_arith()) cfg.perf_model = &*measured;
        const RunStats st = simulate_run(m.analysis, m.spec.method, cfg);
        std::printf(" %9.2f", st.gflops);
        if (c == core_counts[0]) first = st.gflops;
        last = st.gflops;
      }
      // Parallel efficiency at 12 cores relative to 1 core.
      std::printf("  %7.1f%%\n", 100.0 * last / (12.0 * first));
    }
    print_rule(96);
  }

  if (!no_real) real_contention_section(threads, reps);
  return 0;
}
