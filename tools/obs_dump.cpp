// Observability snapshot tool (and the obs layer's CI self-check).
//
//   tools/obs_dump [--format prom|json|chrome] [--n <grid>] [--runtime R]
//     Runs one instrumented factorize+solve workload against a private
//     registry + tracer and dumps the result to stdout: a Prometheus
//     text exposition (`prom`, default), a structured JSON scrape with
//     the span stream (`json`), or chrome://tracing JSON (`chrome`).
//
//   tools/obs_dump --self-check
//     Exercises the whole layer end to end -- sharded counters under
//     threads, histogram buckets, span parent links across the
//     service -> solver -> driver boundary, exporter well-formedness,
//     metrics/stats reconciliation -- and exits non-zero on any
//     violation.  Wired into ctest (obs_dump_self_check).
#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "mat/generators.hpp"
#include "obs/export.hpp"
#include "obs/obs.hpp"
#include "service/options_builder.hpp"

namespace {

using namespace spx;

int failures = 0;

void check(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "obs_dump: FAIL: %s\n", what);
    ++failures;
  }
}

/// One small instrumented service workload: n x n grid Laplacian,
/// factorize + a couple of solves, every span and metric captured in the
/// private registry/tracer.
void run_workload(obs::MetricsRegistry& registry, obs::Tracer& tracer,
                  RuntimeKind runtime, int grid) {
  OptionsBuilder b;
  b.metrics(&registry).tracer(&tracer).runtime(runtime).threads(2).workers(
      2);
  service::SolveService svc(b.service_options());
  const auto a = std::make_shared<const CscMatrix<real_t>>(
      gen::grid2d_laplacian(grid, grid));
  const service::FactorizeResult fr =
      svc.factorize("obs-dump", a, Factorization::LLT);
  if (!fr.ok()) {
    std::fprintf(stderr, "obs_dump: factorize failed: %s\n",
                 fr.error.c_str());
    ++failures;
    return;
  }
  std::vector<real_t> rhs(static_cast<std::size_t>(a->ncols()), 1.0);
  (void)svc.solve("obs-dump", fr.factor, rhs);
  (void)svc.factorize("obs-dump", a, Factorization::LLT);  // cache hit
}

int self_check() {
  // 1. Sharded counter exactness under contention: 8 threads x 10k incs.
  {
    obs::MetricsRegistry reg;
    obs::Counter& c = reg.counter("check_total", "self-check counter");
    std::vector<std::thread> threads;
    for (int t = 0; t < 8; ++t) {
      threads.emplace_back([&c] {
        for (int i = 0; i < 10000; ++i) c.inc();
      });
    }
    for (std::thread& t : threads) t.join();
    check(c.value() == 80000.0, "sharded counter sums exactly");
  }

  // 2. Histogram bucket placement (inclusive upper bounds + +Inf).
  {
    obs::MetricsRegistry reg;
    obs::Histogram& h =
        reg.histogram("check_seconds", {0.1, 1.0}, "self-check histogram");
    h.observe(0.05);
    h.observe(0.1);   // inclusive: lands in the 0.1 bucket
    h.observe(0.5);
    h.observe(5.0);   // +Inf bucket
    const obs::Histogram::Snapshot s = h.snapshot();
    check(s.count == 4, "histogram total count");
    check(s.cumulative.size() == 3, "histogram bucket count");
    check(s.cumulative[0] == 2 && s.cumulative[1] == 3 &&
              s.cumulative[2] == 4,
          "histogram cumulative buckets");
  }

  // 3. End-to-end workload: spans thread one trace id from the service
  // request down to driver tasks, and the registry reconciles with
  // ServiceStats-style counters.
  obs::MetricsRegistry registry;
  obs::Tracer tracer;
  run_workload(registry, tracer, RuntimeKind::Native, 12);
  const std::vector<obs::SpanRecord> spans = tracer.snapshot();
  check(!spans.empty(), "workload recorded spans");
  std::uint64_t factorize_trace = 0;
  std::uint64_t factorize_span = 0;
  std::size_t tasks = 0, queue_waits = 0;
  for (const obs::SpanRecord& s : spans) {
    if (std::strcmp(s.name, "solver.factorize") == 0) {
      factorize_trace = s.trace_id;
      factorize_span = s.span_id;
    }
    if (std::strcmp(s.track, "worker-") == 0) ++tasks;
    if (std::strcmp(s.name, "service.queue.wait") == 0) ++queue_waits;
  }
  check(factorize_trace != 0, "solver.factorize span present");
  check(queue_waits >= 2, "queue-wait spans recorded");
  std::size_t tasks_in_trace = 0;
  for (const obs::SpanRecord& s : spans) {
    if (std::strcmp(s.track, "worker-") != 0) continue;
    if (s.trace_id == factorize_trace) ++tasks_in_trace;
    check(s.end >= s.start, "span times ordered");
  }
  check(tasks > 0, "driver task spans recorded");
  // Driver tasks parent (transitively) under the factorize request's
  // trace: driver.run -> solver.factorize -> ... one trace id.
  check(tasks_in_trace > 0, "task spans share the factorize trace id");
  // The span stream parents are resolvable within the snapshot.
  for (const obs::SpanRecord& s : spans) {
    if (s.parent_id == 0) continue;
    bool found = false;
    for (const obs::SpanRecord& p : spans) {
      if (p.span_id == s.parent_id) {
        found = true;
        check(p.trace_id == s.trace_id, "parent in the same trace");
        break;
      }
    }
    check(found, "parent span resolvable in the snapshot");
  }
  (void)factorize_span;

  // 4. Registry reconciliation: the mirrored service counters match the
  // canonical atomics' semantics (2 submits + 1 solve, 1 cache hit).
  check(registry.value("spx_service_submitted_total") == 3.0,
        "submitted counter reconciles");
  check(registry.value("spx_service_factorizes_total") == 2.0,
        "factorize counter reconciles");
  check(registry.value("spx_service_solves_total") == 1.0,
        "solve counter reconciles");
  check(registry.value("spx_analysis_cache_hits_total") == 1.0,
        "cache hit counter reconciles");
  check(registry.value("spx_analysis_cache_misses_total") == 1.0,
        "cache miss counter reconciles");
  const double cpu = registry.value(
      "spx_tasks_executed_total", {{"kind", "panel"}, {"resource", "cpu"}});
  check(cpu > 0, "driver task counters populated");

  // 5. Exporters are well-formed: Prometheus exposition has HELP/TYPE
  // pairs, JSON parses back, chrome trace parses back.
  const std::string prom = obs::prometheus_text(registry);
  check(prom.find("# TYPE spx_service_submitted_total counter") !=
            std::string::npos,
        "prometheus TYPE line present");
  check(prom.find("spx_service_errors_total{code=\"none\"}") !=
            std::string::npos,
        "prometheus label block rendered");
  check(prom.find("spx_task_seconds_bucket") != std::string::npos,
        "prometheus histogram expansion present");
  try {
    (void)json::Value::parse(obs::metrics_to_json(registry).dump());
    (void)json::Value::parse(obs::spans_to_json(spans).dump());
    std::ostringstream chrome;
    obs::write_chrome_trace(spans, chrome);
    const json::Value parsed = json::Value::parse(chrome.str());
    check(parsed.at("traceEvents").size() == spans.size(),
          "chrome trace event per span");
  } catch (const std::exception& e) {
    std::fprintf(stderr, "obs_dump: exporter JSON invalid: %s\n", e.what());
    ++failures;
  }

  // 6. Ring bound: a tiny tracer drops oldest spans and counts them.
  {
    obs::Tracer tiny(4);
    for (int i = 0; i < 10; ++i) {
      tiny.record_span("x", "span-", {}, i, i + 1);
    }
    check(tiny.size() == 4, "ring retains capacity spans");
    check(tiny.dropped() == 6, "ring counts dropped spans");
    check(tiny.total_recorded() == 10, "ring counts all records");
  }

  // 7. The SPX_OBS runtime switch actually gates recording.
  {
    obs::MetricsRegistry reg;
    obs::Tracer quiet;
    obs::set_enabled(false);
    run_workload(reg, quiet, RuntimeKind::Native, 8);
    obs::set_enabled(true);
    check(quiet.size() == 0, "disabled layer records no spans");
    check(reg.value("spx_service_submitted_total") == 0.0,
          "disabled layer bumps no mirrored counters");
  }

  if (failures == 0) std::printf("obs_dump: self-check OK\n");
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string format = "prom";
  RuntimeKind runtime = RuntimeKind::Native;
  int grid = 16;
  bool self = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "obs_dump: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--self-check") {
      self = true;
    } else if (arg == "--format") {
      format = next();
    } else if (arg == "--n") {
      grid = std::atoi(next().c_str());
    } else if (arg == "--runtime") {
      const std::string r = next();
      if (r == "sequential") runtime = RuntimeKind::Sequential;
      else if (r == "native") runtime = RuntimeKind::Native;
      else if (r == "starpu") runtime = RuntimeKind::Starpu;
      else if (r == "parsec") runtime = RuntimeKind::Parsec;
      else {
        std::fprintf(stderr, "obs_dump: unknown runtime '%s'\n", r.c_str());
        return 2;
      }
    } else {
      std::fprintf(stderr,
                   "usage: obs_dump [--self-check] [--format prom|json|"
                   "chrome] [--n GRID] [--runtime R]\n");
      return arg == "--help" ? 0 : 2;
    }
  }
  if (self) return self_check();

  obs::MetricsRegistry registry;
  obs::Tracer tracer;
  run_workload(registry, tracer, runtime, grid);
  if (failures > 0) return 1;
  if (format == "prom") {
    std::fputs(obs::prometheus_text(registry).c_str(), stdout);
  } else if (format == "json") {
    obs::JsonWriter w;
    w.field("metrics", obs::metrics_to_json(registry))
        .field("spans", obs::spans_to_json(tracer.snapshot()));
    std::printf("%s\n", std::move(w).take().dump().c_str());
  } else if (format == "chrome") {
    std::ostringstream out;
    obs::write_chrome_trace(tracer.snapshot(), out);
    std::fputs(out.str().c_str(), stdout);
  } else {
    std::fprintf(stderr, "obs_dump: unknown format '%s'\n", format.c_str());
    return 2;
  }
  return 0;
}
