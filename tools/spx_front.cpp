// spx_front: the consistent-hashing front-end over a set of shards.
//
//   spx_front --shard NAME:HOST:PORT [--shard ...] [--port P]
//             [--http-port P] [--window N] [--vnodes N]
//             [--probe-interval S] [--max-backoff S]
//             [--breaker-cooldown S] [--drain-timeout S] [--print-ports]
//
// Clients speak the same wire protocol to the front as to a shard; the
// front routes each request by its pattern digest over the live shard
// ring, bounces overload (Error Overloaded), and reroutes around
// draining or lost shards.  /healthz, /readyz and /metrics are served on
// --http-port.  SIGTERM/SIGINT drain gracefully.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <unistd.h>

#include "net/front_server.hpp"

namespace {

int g_signal_pipe[2] = {-1, -1};

void on_signal(int) {
  const char byte = 1;
  [[maybe_unused]] ssize_t n = ::write(g_signal_pipe[1], &byte, 1);
}

double arg_double(int argc, char** argv, int& i) {
  if (i + 1 >= argc) {
    std::fprintf(stderr, "missing value for %s\n", argv[i]);
    std::exit(2);
  }
  return std::atof(argv[++i]);
}

spx::net::ShardEndpoint parse_shard(const std::string& spec) {
  const std::size_t c1 = spec.find(':');
  const std::size_t c2 = c1 == std::string::npos ? std::string::npos
                                                 : spec.find(':', c1 + 1);
  if (c1 == std::string::npos || c2 == std::string::npos) {
    std::fprintf(stderr, "--shard wants NAME:HOST:PORT, got '%s'\n",
                 spec.c_str());
    std::exit(2);
  }
  spx::net::ShardEndpoint ep;
  ep.name = spec.substr(0, c1);
  ep.host = spec.substr(c1 + 1, c2 - c1 - 1);
  ep.port = static_cast<std::uint16_t>(std::atoi(spec.c_str() + c2 + 1));
  return ep;
}

}  // namespace

int main(int argc, char** argv) {
  spx::net::FrontServerOptions opts;
  double drain_timeout_s = 30;
  bool print_ports = false;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--shard" && i + 1 < argc) {
      opts.shards.push_back(parse_shard(argv[++i]));
    } else if (a == "--port") {
      opts.port = static_cast<std::uint16_t>(arg_double(argc, argv, i));
    } else if (a == "--http-port") {
      opts.http_port = static_cast<std::uint16_t>(arg_double(argc, argv, i));
    } else if (a == "--window") {
      opts.max_inflight_per_shard =
          static_cast<std::size_t>(arg_double(argc, argv, i));
    } else if (a == "--vnodes") {
      opts.vnodes = static_cast<std::uint32_t>(arg_double(argc, argv, i));
    } else if (a == "--probe-interval") {
      opts.probe_interval_s = arg_double(argc, argv, i);
    } else if (a == "--max-backoff") {
      opts.max_reconnect_backoff_s = arg_double(argc, argv, i);
    } else if (a == "--breaker-cooldown") {
      opts.breaker.open_cooldown_s = arg_double(argc, argv, i);
    } else if (a == "--drain-timeout") {
      drain_timeout_s = arg_double(argc, argv, i);
    } else if (a == "--print-ports") {
      print_ports = true;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", a.c_str());
      return 2;
    }
  }
  if (opts.shards.empty()) {
    std::fprintf(stderr, "at least one --shard NAME:HOST:PORT is required\n");
    return 2;
  }

  if (::pipe(g_signal_pipe) != 0) {
    std::perror("pipe");
    return 1;
  }
  struct sigaction sa {};
  sa.sa_handler = on_signal;
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);

  spx::net::FrontServer front(opts);
  if (print_ports) {
    std::printf("%u %u\n", front.port(), front.http_port());
    std::fflush(stdout);
  }
  std::fprintf(stderr, "[front] serving on :%u (http :%u), %zu shard(s)\n",
               front.port(), front.http_port(), opts.shards.size());

  char byte = 0;
  while (::read(g_signal_pipe[0], &byte, 1) < 0 && errno == EINTR) {
  }
  std::fprintf(stderr, "[front] draining...\n");
  const bool drained = front.drain_and_stop(drain_timeout_s);
  std::fprintf(stderr, "[front] %s\n",
               drained ? "drained cleanly" : "drain timed out");
  return drained ? 0 : 1;
}
