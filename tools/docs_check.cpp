// Documentation checker, run as the `docs_check` ctest target:
//   * every relative markdown link in the repo's top-level *.md files and
//     docs/ must resolve to an existing file (anchors and external URLs
//     are skipped);
//   * every docs/*.md must be referenced from README.md (as a markdown
//     link or a backticked `docs/...` mention) -- no orphaned
//     documentation;
//   * every repo path named in backticks in docs/ARCHITECTURE.md (tokens
//     starting with src/, docs/, bench/, tests/, tools/, examples/ or
//     models/) must exist, so the architecture document cannot drift from
//     the tree it describes;
//   * every models/*.json must parse as a valid performance-model file
//     through PerfModel::load -- the same code path the solver uses -- so
//     a committed model can never be silently unloadable.
//
//   tools/docs_check <repo-root>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "perfmodel/perf_model.hpp"

namespace fs = std::filesystem;

namespace {

int errors = 0;

void fail(const std::string& msg) {
  std::fprintf(stderr, "docs_check: %s\n", msg.c_str());
  ++errors;
}

std::string read_file(const fs::path& p) {
  std::ifstream in(p);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

bool external_target(const std::string& t) {
  return t.rfind("http://", 0) == 0 || t.rfind("https://", 0) == 0 ||
         t.rfind("mailto:", 0) == 0 || (!t.empty() && t[0] == '#');
}

/// Checks every inline `[text](target)` link of one markdown file.
void check_markdown(const fs::path& md, const fs::path& root) {
  const std::string text = read_file(md);
  for (std::size_t i = 0; i + 1 < text.size(); ++i) {
    if (text[i] != ']' || text[i + 1] != '(') continue;
    const std::size_t close = text.find(')', i + 2);
    if (close == std::string::npos) continue;
    std::string target = text.substr(i + 2, close - i - 2);
    if (target.empty() || external_target(target)) continue;
    if (target.find(' ') != std::string::npos ||
        target.find('\n') != std::string::npos) {
      continue;  // not a link (e.g. prose in parentheses after brackets)
    }
    const std::size_t hash = target.find('#');
    if (hash != std::string::npos) target.resize(hash);
    if (target.empty()) continue;
    const fs::path resolved = target[0] == '/'
                                  ? root / target.substr(1)
                                  : md.parent_path() / target;
    if (!fs::exists(resolved)) {
      fail(md.string() + ": broken link '" + target + "'");
    }
  }
}

/// Every docs/*.md must be mentioned in README.md as `docs/<name>`.
void check_docs_referenced(const std::vector<fs::path>& mds,
                           const fs::path& root) {
  const std::string readme = read_file(root / "README.md");
  for (const fs::path& md : mds) {
    if (md.parent_path().filename() != "docs") continue;
    const std::string want = "docs/" + md.filename().string();
    if (readme.find(want) == std::string::npos) {
      fail(md.string() + ": not referenced from README.md ('" + want +
           "' appears nowhere)");
    }
  }
}

/// Backticked repo paths in docs/ARCHITECTURE.md must exist: any token
/// `prefix/...` where prefix names a top-level code directory is treated
/// as a path claim about the tree.
void check_architecture_paths(const fs::path& root) {
  const fs::path arch = root / "docs" / "ARCHITECTURE.md";
  if (!fs::exists(arch)) {
    fail("docs/ARCHITECTURE.md is missing");
    return;
  }
  static const char* prefixes[] = {"src/",   "docs/",     "bench/",
                                   "tests/", "tools/",    "examples/",
                                   "models/"};
  const std::string text = read_file(arch);
  std::size_t checked = 0;
  std::size_t tick = text.find('`');
  while (tick != std::string::npos) {
    const std::size_t close = text.find('`', tick + 1);
    if (close == std::string::npos) break;
    const std::string token = text.substr(tick + 1, close - tick - 1);
    bool pathlike = false;
    for (const char* p : prefixes) {
      if (token.rfind(p, 0) == 0) pathlike = true;
    }
    if (pathlike &&
        token.find_first_of(" \n`*()") == std::string::npos) {
      ++checked;
      if (!fs::exists(root / token)) {
        fail("docs/ARCHITECTURE.md: named path '" + token +
             "' does not exist");
      }
    }
    tick = text.find('`', close + 1);
  }
  if (checked == 0) {
    fail("docs/ARCHITECTURE.md: no backticked repo paths found -- "
         "checker or document is broken");
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: docs_check <repo-root>\n");
    return 2;
  }
  const fs::path root = argv[1];

  std::vector<fs::path> mds;
  for (const auto& e : fs::directory_iterator(root)) {
    if (e.path().extension() == ".md") mds.push_back(e.path());
  }
  if (fs::exists(root / "docs")) {
    for (const auto& e : fs::directory_iterator(root / "docs")) {
      if (e.path().extension() == ".md") mds.push_back(e.path());
    }
  }
  if (mds.empty()) fail("no markdown files found under " + root.string());
  for (const fs::path& md : mds) check_markdown(md, root);
  check_docs_referenced(mds, root);
  check_architecture_paths(root);

  std::size_t models = 0;
  if (fs::exists(root / "models")) {
    for (const auto& e : fs::directory_iterator(root / "models")) {
      if (e.path().extension() != ".json") continue;
      ++models;
      std::string error;
      const auto m = spx::perfmodel::PerfModel::load(e.path().string(),
                                                     &error);
      if (!m) {
        fail(e.path().string() + ": invalid model file: " + error);
      }
    }
  }

  std::printf("docs_check: %zu markdown files, %zu model files, %d "
              "error(s)\n",
              mds.size(), models, errors);
  return errors == 0 ? 0 : 1;
}
