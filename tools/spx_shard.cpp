// spx_shard: one solve shard behind the wire protocol.
//
//   spx_shard [--name NAME] [--port P] [--http-port P] [--workers N]
//             [--cache-mb MB] [--max-factors N] [--idle-timeout S]
//             [--drain-timeout S] [--persist-dir DIR]
//             [--persist-interval S] [--print-ports]
//
// --persist-dir enables factor persistence: completed factorizations are
// snapshotted there (crash-atomic, rate-limited by --persist-interval)
// and replayed on the next start, so a SIGKILLed shard comes back warm.
//
// Listens for protocol frames on --port and serves /healthz, /readyz and
// /metrics on --http-port (both default to ephemeral; --print-ports
// emits "port http_port" on stdout for the parent to capture).  SIGTERM
// or SIGINT starts a graceful drain: stop accepting, answer Draining,
// finish every admitted request, flush, exit 0.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <unistd.h>

#include "net/shard_server.hpp"

namespace {

// Async-signal-safe shutdown latch: the handler writes one byte to a
// self-pipe; main blocks on the read.
int g_signal_pipe[2] = {-1, -1};

void on_signal(int) {
  const char byte = 1;
  [[maybe_unused]] ssize_t n = ::write(g_signal_pipe[1], &byte, 1);
}

double arg_double(int argc, char** argv, int& i) {
  if (i + 1 >= argc) {
    std::fprintf(stderr, "missing value for %s\n", argv[i]);
    std::exit(2);
  }
  return std::atof(argv[++i]);
}

}  // namespace

int main(int argc, char** argv) {
  spx::net::ShardServerOptions opts;
  opts.service.num_workers = 2;
  double drain_timeout_s = 30;
  bool print_ports = false;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--name" && i + 1 < argc) {
      opts.name = argv[++i];
    } else if (a == "--port") {
      opts.port = static_cast<std::uint16_t>(arg_double(argc, argv, i));
    } else if (a == "--http-port") {
      opts.http_port = static_cast<std::uint16_t>(arg_double(argc, argv, i));
    } else if (a == "--workers") {
      opts.service.num_workers = static_cast<int>(arg_double(argc, argv, i));
    } else if (a == "--cache-mb") {
      opts.service.cache_bytes =
          static_cast<std::size_t>(arg_double(argc, argv, i)) << 20;
    } else if (a == "--max-factors") {
      opts.max_factors = static_cast<std::size_t>(arg_double(argc, argv, i));
    } else if (a == "--idle-timeout") {
      opts.idle_timeout_s = arg_double(argc, argv, i);
    } else if (a == "--drain-timeout") {
      drain_timeout_s = arg_double(argc, argv, i);
    } else if (a == "--persist-dir" && i + 1 < argc) {
      opts.persist_dir = argv[++i];
    } else if (a == "--persist-interval") {
      opts.persist_interval_s = arg_double(argc, argv, i);
    } else if (a == "--print-ports") {
      print_ports = true;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", a.c_str());
      return 2;
    }
  }

  if (::pipe(g_signal_pipe) != 0) {
    std::perror("pipe");
    return 1;
  }
  struct sigaction sa {};
  sa.sa_handler = on_signal;
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);

  spx::net::ShardServer shard(opts);
  if (print_ports) {
    std::printf("%u %u\n", shard.port(), shard.http_port());
    std::fflush(stdout);
  }
  std::fprintf(stderr, "[%s] serving on :%u (http :%u)\n",
               shard.name().c_str(), shard.port(), shard.http_port());

  char byte = 0;
  while (::read(g_signal_pipe[0], &byte, 1) < 0 && errno == EINTR) {
  }
  std::fprintf(stderr, "[%s] draining...\n", shard.name().c_str());
  const bool drained = shard.drain_and_stop(drain_timeout_s);
  std::fprintf(stderr, "[%s] %s\n", shard.name().c_str(),
               drained ? "drained cleanly" : "drain timed out");
  return drained ? 0 : 1;
}
